package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Client is the typed qcoordd API client used by the tests, the smoke
// harness and the load-test driver. It is safe for concurrent use.
//
// Retries are budgeted: transport failures on idempotent GETs (a killed
// connection mid-read, a stale pooled connection the server closed) retry
// automatically, and — when RetryConfig.StatusRetry is enabled — so do the
// server's retryable statuses (429 shed, 503 drain), honoring Retry-After.
// A token bucket caps the retry-to-request ratio so a fleet of clients
// cannot amplify an overloaded server's offered load into a retry storm:
// each original request earns Budget tokens, each retry spends one, so the
// sustained retry ratio never exceeds Budget regardless of how hard the
// server sheds.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryConfig

	tokMu  sync.Mutex
	tokens float64

	nRequests     atomic.Int64
	nAttempts     atomic.Int64
	nRetries      atomic.Int64
	nBudgetDenied atomic.Int64
	nHedges       atomic.Int64
}

// RetryConfig tunes the client's retry and hedging behavior. The zero value
// is usable: withDefaults fills every field. The defaults preserve the
// pre-retry contract for everything except idempotent-GET transport errors:
// POSTs are never replayed on a dead connection (the request may have
// executed), and retryable statuses surface to the caller unless
// StatusRetry opts in.
type RetryConfig struct {
	// MaxAttempts bounds total attempts per call (1 = no retries).
	// Default 2.
	MaxAttempts int
	// StatusRetry also retries the server's retryable statuses — 429 (shed)
	// and 503 (drain) — for any method. The server sheds before touching
	// session state, so replaying a shed POST never double-plays a round.
	// Default false: those statuses surface to the caller.
	StatusRetry bool
	// Budget is the retry-token earn rate per original request; each retry
	// spends one token. Default 0.1 — at most ~10% sustained retry ratio.
	Budget float64
	// Burst caps banked retry tokens (and seeds the bucket). Default 10.
	Burst float64
	// BaseBackoff is the first retry's backoff; attempts double it. The
	// server's Retry-After, when present, overrides the exponential.
	// Default 5ms.
	BaseBackoff time.Duration
	// MaxBackoff caps any single backoff, including Retry-After hints.
	// Default 1s.
	MaxBackoff time.Duration
	// HedgeAfter, when positive, hedges Session info reads: if the first
	// GET has not answered within this delay, a second identical GET races
	// it and the first response wins. Info reads are idempotent and cheap
	// server-side, so hedging trims tail latency without risking
	// double-played rounds. Default 0 (disabled).
	HedgeAfter time.Duration
	// Sleep and Rand are injectable for deterministic tests (defaults
	// time.Sleep and math/rand.Float64; Rand jitters the exponential
	// backoff across a fleet so retries do not arrive in lockstep).
	Sleep func(time.Duration)
	Rand  func() float64
}

func (rc RetryConfig) withDefaults() RetryConfig {
	if rc.MaxAttempts <= 0 {
		rc.MaxAttempts = 2
	}
	if rc.Budget <= 0 {
		rc.Budget = 0.1
	}
	if rc.Burst <= 0 {
		rc.Burst = 10
	}
	if rc.BaseBackoff <= 0 {
		rc.BaseBackoff = 5 * time.Millisecond
	}
	if rc.MaxBackoff <= 0 {
		rc.MaxBackoff = time.Second
	}
	if rc.Sleep == nil {
		rc.Sleep = time.Sleep
	}
	if rc.Rand == nil {
		rc.Rand = rand.Float64
	}
	return rc
}

// ClientStats is a snapshot of the client's retry accounting.
type ClientStats struct {
	// Requests is the number of API calls issued (hedge duplicates count
	// as their own requests).
	Requests int64
	// Attempts is the total HTTP exchanges, including retries.
	Attempts int64
	// Retries is how many attempts were retries of a failed exchange.
	Retries int64
	// BudgetDenied counts retries suppressed by an empty token bucket.
	BudgetDenied int64
	// Hedges counts hedged info reads that actually fired a second GET.
	Hedges int64
}

// Stats snapshots the retry accounting.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Requests:     c.nRequests.Load(),
		Attempts:     c.nAttempts.Load(),
		Retries:      c.nRetries.Load(),
		BudgetDenied: c.nBudgetDenied.Load(),
		Hedges:       c.nHedges.Load(),
	}
}

// NewClient targets a qcoordd base URL ("http://host:port", no trailing
// slash needed). The client rides a dedicated transport tuned for a
// high-rate decide workload against a single host (see newTransport); for
// the default pooling behavior use NewClientWith(base, nil).
func NewClient(base string) *Client {
	return NewClientWith(base, &http.Client{
		Timeout:   30 * time.Second,
		Transport: newTransport(defaultClientConns),
	})
}

// defaultClientConns sizes the per-host idle-connection pool. The load-test
// driver runs up to this many concurrent workers against one daemon; keeping
// that many warm connections means steady-state decides never pay a TCP
// handshake.
const defaultClientConns = 64

// newTransport builds an http.Transport tuned for the decide hot path:
// keep-alives on (the default transport closes idle conns aggressively under
// churn because MaxIdleConnsPerHost is 2 — at 64 concurrent workers that
// means constant re-dials), idle pool sized to the expected concurrency, and
// a generous idle timeout so a bursty open-loop generator reuses connections
// across gaps in the schedule.
func newTransport(conns int) *http.Transport {
	if conns <= 0 {
		conns = defaultClientConns
	}
	return &http.Transport{
		MaxIdleConns:        conns,
		MaxIdleConnsPerHost: conns,
		MaxConnsPerHost:     0, // unbounded; the generator bounds concurrency
		IdleConnTimeout:     90 * time.Second,
		ForceAttemptHTTP2:   false, // one host, many short exchanges: HTTP/1.1 pipelining via pooled conns wins
	}
}

// NewClientWith targets base using a caller-supplied http.Client (nil means
// a default-transport client with a 30 s timeout) and default retry
// behavior. The load-test harness uses this to size the connection pool to
// its worker count.
func NewClientWith(base string, hc *http.Client) *Client {
	return NewRetryClient(base, hc, RetryConfig{})
}

// NewRetryClient is NewClientWith with explicit retry tuning.
func NewRetryClient(base string, hc *http.Client, rc RetryConfig) *Client {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	rc = rc.withDefaults()
	return &Client{base: base, hc: hc, retry: rc, tokens: rc.Burst}
}

// APIError is a non-2xx response, carrying the server's error message.
type APIError struct {
	Status  int
	Message string
	// RetryAfter is the server's Retry-After hint, when present (shed 429s
	// and drain 503s carry one).
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("qcoordd: HTTP %d: %s", e.Status, e.Message)
}

// Retryable reports whether the request may be retried verbatim: the
// drain-mode 503 and the admission-shed 429, both issued before the server
// touches session state.
func (e *APIError) Retryable() bool {
	return e.Status == http.StatusServiceUnavailable || e.Status == http.StatusTooManyRequests
}

// isTransientNetErr classifies transport failures that mean the connection
// died without a response — a stale pooled connection the server already
// closed, a reset mid-exchange. Safe to replay only for idempotent
// requests.
func isTransientNetErr(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return true
	}
	s := err.Error()
	return strings.Contains(s, "connection reset") ||
		strings.Contains(s, "broken pipe") ||
		strings.Contains(s, "server closed idle connection")
}

// refillTokens credits one original request's worth of retry budget.
func (c *Client) refillTokens() {
	c.tokMu.Lock()
	c.tokens += c.retry.Budget
	if c.tokens > c.retry.Burst {
		c.tokens = c.retry.Burst
	}
	c.tokMu.Unlock()
}

// takeToken spends one retry token, reporting whether the budget allowed it.
func (c *Client) takeToken() bool {
	c.tokMu.Lock()
	ok := c.tokens >= 1
	if ok {
		c.tokens--
	}
	c.tokMu.Unlock()
	return ok
}

// backoff is the jittered exponential delay before retry `attempt`
// (1-based count of completed attempts): base×2^(attempt−1), capped, then
// spread over [d/2, d) so fleet retries decorrelate.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.retry.BaseBackoff << (attempt - 1)
	if d > c.retry.MaxBackoff || d <= 0 {
		d = c.retry.MaxBackoff
	}
	return d/2 + time.Duration(c.retry.Rand()*float64(d/2))
}

// retryDelay classifies a failed attempt: (delay, true) when the attempt
// may be retried after delay, (0, false) when the error must surface.
func (c *Client) retryDelay(method string, err error, attempt int) (time.Duration, bool) {
	var ae *APIError
	if errors.As(err, &ae) {
		if !c.retry.StatusRetry || !ae.Retryable() {
			return 0, false
		}
		if ae.RetryAfter > 0 {
			// Honor the server's hint — it knows when its backlog drains —
			// capped so a pathological header cannot park the client.
			d := ae.RetryAfter
			if d > c.retry.MaxBackoff {
				d = c.retry.MaxBackoff
			}
			return d, true
		}
		return c.backoff(attempt), true
	}
	// Transport error: the connection died. Only idempotent GETs are safe
	// to replay — a POST may have executed before the connection dropped.
	if method == http.MethodGet && isTransientNetErr(err) {
		return c.backoff(attempt), true
	}
	return 0, false
}

// do issues one API call with retries, decoding the JSON response into out
// (ignored when nil).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = b
	}
	c.nRequests.Add(1)
	c.refillTokens()
	for attempt := 1; ; attempt++ {
		c.nAttempts.Add(1)
		err := c.once(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		if attempt >= c.retry.MaxAttempts || ctx.Err() != nil {
			return err
		}
		delay, retryable := c.retryDelay(method, err, attempt)
		if !retryable {
			return err
		}
		if !c.takeToken() {
			c.nBudgetDenied.Add(1)
			return err
		}
		c.nRetries.Add(1)
		c.retry.Sleep(delay)
	}
}

// once performs a single HTTP exchange.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var ae apiError
		msg := ""
		if err := json.NewDecoder(resp.Body).Decode(&ae); err == nil {
			msg = ae.Error
		}
		e := &APIError{Status: resp.StatusCode, Message: msg}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
		return e
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// CreateSession registers an endpoint group and provisions its entanglement
// supply, returning the created session's initial health.
func (c *Client) CreateSession(ctx context.Context, req SessionRequest) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &info)
	return info, err
}

// Decide plays one coordination round in a session.
func (c *Client) Decide(ctx context.Context, session string, x, y int) (DecideResponse, error) {
	var resp DecideResponse
	err := c.do(ctx, http.MethodPost, "/v1/decide", DecideRequest{Session: session, X: x, Y: y}, &resp)
	return resp, err
}

// DecideDeadline is Decide with an absolute delivery deadline stamped on
// the request, so an admission-enabled server can shed it rather than
// serve it late.
func (c *Client) DecideDeadline(ctx context.Context, session string, deadline time.Time, x, y int) (DecideResponse, error) {
	var resp DecideResponse
	err := c.do(ctx, http.MethodPost, "/v1/decide", DecideRequest{
		Session: session, X: x, Y: y, DeadlineUnixNS: deadline.UnixNano(),
	}, &resp)
	return resp, err
}

// DecideBatch plays len(rounds) coordination rounds in one HTTP exchange,
// amortizing connection, header and JSON overhead across the batch. Results
// come back in request order.
func (c *Client) DecideBatch(ctx context.Context, session string, rounds []Round) ([]DecideResponse, error) {
	var resp DecideBatchResponse
	err := c.do(ctx, http.MethodPost, "/v1/decide/batch", DecideBatchRequest{Session: session, Rounds: rounds}, &resp)
	return resp.Results, err
}

// DecideBatchDeadline is DecideBatch with one absolute deadline shared by
// the whole batch.
func (c *Client) DecideBatchDeadline(ctx context.Context, session string, deadline time.Time, rounds []Round) ([]DecideResponse, error) {
	var resp DecideBatchResponse
	err := c.do(ctx, http.MethodPost, "/v1/decide/batch", DecideBatchRequest{
		Session: session, Rounds: rounds, DeadlineUnixNS: deadline.UnixNano(),
	}, &resp)
	return resp.Results, err
}

// Session fetches a session's current health and degradation rung. With
// RetryConfig.HedgeAfter set, a slow read is hedged with a second identical
// GET and the first response wins.
func (c *Client) Session(ctx context.Context, id string) (SessionInfo, error) {
	path := "/v1/sessions/" + id
	if c.retry.HedgeAfter <= 0 {
		var info SessionInfo
		err := c.do(ctx, http.MethodGet, path, nil, &info)
		return info, err
	}
	type result struct {
		info SessionInfo
		err  error
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // reels in the losing read
	ch := make(chan result, 2)
	fire := func() {
		var info SessionInfo
		err := c.do(hctx, http.MethodGet, path, nil, &info)
		ch <- result{info, err}
	}
	go fire()
	timer := time.NewTimer(c.retry.HedgeAfter)
	defer timer.Stop()
	pending, hedged := 1, false
	var firstErr error
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				return r.info, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if pending--; pending == 0 {
				return SessionInfo{}, firstErr
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				pending++
				c.nHedges.Add(1)
				go fire()
			}
		}
	}
}

// Metrics fetches the raw /metrics rendering.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{Status: resp.StatusCode, Message: string(b)}
	}
	return string(b), nil
}
