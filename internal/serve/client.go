package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client is the typed qcoordd API client used by the tests, the smoke
// harness and the load-test driver. It is safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient targets a qcoordd base URL ("http://host:port", no trailing
// slash needed). The client rides a dedicated transport tuned for a
// high-rate decide workload against a single host (see newTransport); for
// the default pooling behavior use NewClientWith(base, nil).
func NewClient(base string) *Client {
	return NewClientWith(base, &http.Client{
		Timeout:   30 * time.Second,
		Transport: newTransport(defaultClientConns),
	})
}

// defaultClientConns sizes the per-host idle-connection pool. The load-test
// driver runs up to this many concurrent workers against one daemon; keeping
// that many warm connections means steady-state decides never pay a TCP
// handshake.
const defaultClientConns = 64

// newTransport builds an http.Transport tuned for the decide hot path:
// keep-alives on (the default transport closes idle conns aggressively under
// churn because MaxIdleConnsPerHost is 2 — at 64 concurrent workers that
// means constant re-dials), idle pool sized to the expected concurrency, and
// a generous idle timeout so a bursty open-loop generator reuses connections
// across gaps in the schedule.
func newTransport(conns int) *http.Transport {
	if conns <= 0 {
		conns = defaultClientConns
	}
	return &http.Transport{
		MaxIdleConns:        conns,
		MaxIdleConnsPerHost: conns,
		MaxConnsPerHost:     0, // unbounded; the generator bounds concurrency
		IdleConnTimeout:     90 * time.Second,
		ForceAttemptHTTP2:   false, // one host, many short exchanges: HTTP/1.1 pipelining via pooled conns wins
	}
}

// NewClientWith targets base using a caller-supplied http.Client (nil means
// a default-transport client with a 30 s timeout). The load-test harness
// uses this to size the connection pool to its worker count.
func NewClientWith(base string, hc *http.Client) *Client {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	return &Client{base: base, hc: hc}
}

// APIError is a non-2xx response, carrying the server's error message.
type APIError struct {
	Status  int
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("qcoordd: HTTP %d: %s", e.Status, e.Message)
}

// Retryable reports whether the request may be retried verbatim — the
// drain-mode 503 contract.
func (e *APIError) Retryable() bool { return e.Status == http.StatusServiceUnavailable }

// do issues one request and decodes the JSON response into out (ignored
// when nil).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var ae apiError
		msg := ""
		if err := json.NewDecoder(resp.Body).Decode(&ae); err == nil {
			msg = ae.Error
		}
		return &APIError{Status: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// CreateSession registers an endpoint group and provisions its entanglement
// supply, returning the created session's initial health.
func (c *Client) CreateSession(ctx context.Context, req SessionRequest) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &info)
	return info, err
}

// Decide plays one coordination round in a session.
func (c *Client) Decide(ctx context.Context, session string, x, y int) (DecideResponse, error) {
	var resp DecideResponse
	err := c.do(ctx, http.MethodPost, "/v1/decide", DecideRequest{Session: session, X: x, Y: y}, &resp)
	return resp, err
}

// DecideBatch plays len(rounds) coordination rounds in one HTTP exchange,
// amortizing connection, header and JSON overhead across the batch. Results
// come back in request order.
func (c *Client) DecideBatch(ctx context.Context, session string, rounds []Round) ([]DecideResponse, error) {
	var resp DecideBatchResponse
	err := c.do(ctx, http.MethodPost, "/v1/decide/batch", DecideBatchRequest{Session: session, Rounds: rounds}, &resp)
	return resp.Results, err
}

// Session fetches a session's current health and degradation rung.
func (c *Client) Session(ctx context.Context, id string) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id, nil, &info)
	return info, err
}

// Metrics fetches the raw /metrics rendering.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{Status: resp.StatusCode, Message: string(b)}
	}
	return string(b), nil
}
