// Package serve is the qcoordd serving layer: the paper's decision
// primitive exposed as a long-lived HTTP API. Balancer endpoint groups
// register as sessions (POST /v1/sessions), each provisioned with its own
// entanglement supply chain — engine, pool, SPDC source service and pair
// budget from internal/entangle — and its own core.HealthMonitor, so a
// supply fault steps that session down the degradation ladder without
// touching its neighbors. Decisions (POST /v1/decide) answer in a single
// session-local lock hold: no cross-endpoint communication, which is the
// point (Figure 2).
//
// Session state is sharded: FNV-64a(session ID) picks one of N
// mutex-striped shards (the striped-cache pattern from the solve cache), so
// registration and lookup never take a global lock, and each session's own
// mutex serializes only its rounds.
//
// Shutdown is cooperative: StartDrain stops new sessions and makes further
// decisions return a retryable 503 while in-flight decisions complete
// (Drain bounds the wait), after which the owner flushes a final metrics
// artifact and exits cleanly.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/metrics"
)

// Config parametrizes a Server. The zero value serves with defaults.
type Config struct {
	// Shards is the stripe width of the session store, rounded up to a
	// power of two (default 16).
	Shards int
	// Clock supplies wall time for the session clocks (default time.Now).
	// Injecting a clock makes the whole decide path deterministic: the
	// in-process load-test backend drives sessions on a virtual time axis,
	// and decide-path tests stop racing the real clock.
	Clock func() time.Time
	// Admission, when non-nil, enables overload resilience on the decide
	// paths: the adaptive concurrency limiter, the per-shard deadline
	// gate, priority shedding and the load-driven brownout rung (see
	// internal/admission). Nil preserves the pre-admission behavior
	// exactly — every request is served, however late.
	//
	// Pipeline ordering is limiter → deadline gate → session lock: the
	// limiter bounds handler concurrency before any admission math, the
	// gate rejects requests that cannot finish in budget before they
	// contend on the session's mutex, and only admitted requests touch
	// session state. Drain checks precede all of it — a draining server
	// answers 503 even for traffic admission would accept.
	Admission *admission.Config
}

// Sentinel errors for the in-process decision API (the HTTP handlers map
// them onto status codes).
var (
	// ErrDraining is returned while the server refuses new work during
	// shutdown; the HTTP equivalent is the retryable 503.
	ErrDraining = errors.New("serve: draining")
	// ErrNoSession is returned for an unknown session ID (HTTP 404).
	ErrNoSession = errors.New("serve: no such session")
	// errBodyTooLarge guards the pooled read buffers against abuse.
	errBodyTooLarge = errors.New("serve: request body too large")
)

// ShedError reports a decide request rejected by admission control. Like
// ErrDraining it is retryable — the server did no session work for it —
// and the HTTP handlers map it onto 429 Too Many Requests with a
// Retry-After hint.
type ShedError struct {
	// Outcome is the shed reason (deadline, priority, backlog, limiter,
	// expired).
	Outcome admission.Outcome
	// RetryAfter suggests when the modeled backlog will have drained.
	RetryAfter time.Duration
}

// Error implements error.
func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: overloaded (shed: %s)", e.Outcome)
}

// Retryable marks the error as safe to retry after backoff.
func (e *ShedError) Retryable() bool { return true }

// maxBodyBytes bounds a decide request body (a 4096-round batch is ~64 KiB;
// the limit leaves ample headroom without letting a client balloon the
// pooled buffers).
const maxBodyBytes = 1 << 20

// shard is one stripe of the session store: a mutex guarding an ID→session
// map. The shard lock covers only map access; round-playing work happens
// under the individual session's lock.
type shard struct {
	mu       sync.Mutex
	sessions map[string]*session
}

// Server implements the qcoordd HTTP API. Create one with NewServer and
// mount it (it implements http.Handler).
type Server struct {
	mux      *http.ServeMux
	shards   []*shard
	mask     uint64
	reg      *metrics.Registry
	clock    func() time.Time
	adm      *admission.Controller // nil = admission disabled
	draining atomic.Bool
	inflight atomic.Int64 // decisions currently executing
	nextID   atomic.Uint64

	mSessions     *metrics.Counter
	mSessionGauge *metrics.Gauge
	mDecisions    *metrics.Counter
	mBatches      *metrics.Counter
	mDecideErrs   *metrics.Counter
	mDrainRejects *metrics.Counter
	mDecideTimer  *metrics.Timer
	mBatchTimer   *metrics.Timer
	mGoodput      *metrics.Timer   // in-deadline decision latency
	mLate         *metrics.Counter // decisions delivered past their deadline
}

// NewServer builds a ready-to-mount server.
func NewServer(cfg Config) *Server {
	n := cfg.Shards
	if n <= 0 {
		n = 16
	}
	// Round up to a power of two so shard selection is a mask, not a mod.
	w := 1
	for w < n {
		w <<= 1
	}
	// Everything instruments the process-wide default registry, matching
	// the repo-wide contract (sessions' HealthMonitors already export
	// there), so /metrics is the one complete view.
	reg := metrics.Default()
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	s := &Server{
		shards:        make([]*shard, w),
		mask:          uint64(w - 1),
		reg:           reg,
		clock:         clock,
		mSessions:     reg.Counter("serve_sessions_created_total"),
		mSessionGauge: reg.Gauge("serve_sessions_active"),
		mDecisions:    reg.Counter("serve_decisions_total"),
		mBatches:      reg.Counter("serve_decide_batches_total"),
		mDecideErrs:   reg.Counter("serve_decide_errors_total"),
		mDrainRejects: reg.Counter("serve_drain_rejected_total"),
		mDecideTimer:  reg.Timer("serve_decide"),
		mBatchTimer:   reg.Timer("serve_decide_batch"),
		mGoodput:      reg.Timer("serve_goodput"),
		mLate:         reg.Counter("serve_late_total"),
	}
	if cfg.Admission != nil {
		// One admission gate per session shard: the gate's virtual queue
		// models exactly the state the shard's sessions contend on.
		s.adm = admission.NewController(*cfg.Admission, w)
	}
	for i := range s.shards {
		s.shards[i] = &shard{sessions: make(map[string]*session)}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionInfo)
	mux.HandleFunc("POST /v1/decide", s.handleDecide)
	mux.HandleFunc("POST /v1/decide/batch", s.handleDecideBatch)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// fnv64a is the shard hash — same family the striped solve cache uses.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// shardFor picks the stripe owning a session ID.
func (s *Server) shardFor(id string) *shard {
	return s.shards[fnv64a(id)&s.mask]
}

// shardIndex is shardFor as an index, for the admission gates.
func (s *Server) shardIndex(id string) int {
	return int(fnv64a(id) & s.mask)
}

// Admission returns the server's admission controller (nil when disabled).
func (s *Server) Admission() *admission.Controller { return s.adm }

// lookup resolves a session ID, or nil.
func (s *Server) lookup(id string) *session {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sessions[id]
}

// SessionCount returns the number of registered sessions across all shards.
func (s *Server) SessionCount() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.sessions)
		sh.mu.Unlock()
	}
	return n
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// writeDraining answers a request rejected by shutdown: 503 with
// Retry-After, the retryable contract clients key on.
func writeDraining(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "server is draining")
}

// writeShed answers a request rejected by admission control: 429 with
// Retry-After (whole seconds, rounded up, minimum 1 — the header has no
// sub-second resolution). Clients treat it exactly like the drain 503:
// retryable, after backoff.
func writeShed(w http.ResponseWriter, e *ShedError) {
	secs := int64(1)
	if e.RetryAfter > time.Second {
		secs = int64((e.RetryAfter + time.Second - 1) / time.Second)
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeError(w, http.StatusTooManyRequests, "%v", e)
}

// deadlineOf maps a wire deadline (UnixNano, 0 = unstamped) onto the
// admission layer's absolute form.
func deadlineOf(unixNS int64) time.Time {
	if unixNS == 0 {
		return time.Time{}
	}
	return time.Unix(0, unixNS)
}

// writeRaw sends a pre-encoded JSON body (the append-encoder output) with a
// Content-Length so net/http skips chunked framing.
func writeRaw(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// CreateSession provisions a session in-process (the HTTP handler and the
// load-test backends share it). The returned info reflects the session's
// initial state.
func (s *Server) CreateSession(req SessionRequest) (SessionInfo, error) {
	if s.draining.Load() {
		s.mDrainRejects.Inc()
		return SessionInfo{}, ErrDraining
	}
	id := req.ID
	if id == "" {
		id = fmt.Sprintf("s-%06d", s.nextID.Add(1))
	}
	sess, err := newSession(id, req, s.clock())
	if err != nil {
		return SessionInfo{}, err
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	if _, exists := sh.sessions[id]; exists {
		sh.mu.Unlock()
		sess.stop()
		return SessionInfo{}, fmt.Errorf("session %q already exists", id)
	}
	sh.sessions[id] = sess
	sh.mu.Unlock()
	s.mSessions.Inc()
	s.mSessionGauge.Set(float64(s.SessionCount()))
	return sess.info(false, s.clock()), nil
}

// Decide plays one coordination round in-process, bypassing HTTP and JSON
// entirely — the zero-allocation fast path the paper's microsecond claim
// rests on. The response lands in *out (caller-owned, reusable). Drain
// semantics match the HTTP handler: ErrDraining is the retryable signal.
func (s *Server) Decide(session string, x, y int, out *DecideResponse) error {
	return s.DecideDeadline(session, time.Time{}, x, y, out)
}

// DecideDeadline is Decide with an absolute deadline: with admission
// control enabled, a request whose modeled queue+service time exceeds the
// remaining budget returns a retryable *ShedError instead of being served
// late. A zero deadline means unstamped. The admission-enabled path stays
// allocation-free on accept.
func (s *Server) DecideDeadline(session string, deadline time.Time, x, y int, out *DecideResponse) error {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.draining.Load() {
		s.mDrainRejects.Inc()
		return ErrDraining
	}
	sess := s.lookup(session)
	if sess == nil {
		return ErrNoSession
	}
	var queueNS int64
	var brownout bool
	start := s.clock()
	if s.adm != nil {
		lim := s.adm.Limiter()
		if !lim.TryAcquire() {
			return errShedLimiter
		}
		idx := s.shardIndex(session)
		dec := s.adm.Admit(idx, start, deadline, sess.priority, 1)
		if !dec.OK {
			lim.Release(0, nil)
			return shedError(dec)
		}
		queueNS, brownout = dec.QueueNS, dec.Brownout
		defer func() {
			elapsed := s.clock().Sub(start)
			s.adm.Observe(idx, elapsed)
			lim.Release(elapsed, s.clock)
		}()
	}
	if err := sess.decideAt(start, x, y, out, queueNS, brownout); err != nil {
		s.mDecideErrs.Inc()
		return err
	}
	s.accountDeadline(start, deadline, out)
	s.mDecisions.Inc()
	return nil
}

// DecideBatch plays len(rounds) rounds in-process in one session-lock hold.
// out must have at least len(rounds) elements; results land in request
// order in out[:len(rounds)].
func (s *Server) DecideBatch(session string, rounds []Round, out []DecideResponse) error {
	return s.DecideBatchDeadline(session, time.Time{}, rounds, out)
}

// DecideBatchDeadline is DecideBatch with an absolute deadline shared by
// the whole batch (it arrives, queues and plays together); see
// DecideDeadline.
func (s *Server) DecideBatchDeadline(session string, deadline time.Time, rounds []Round, out []DecideResponse) error {
	if len(rounds) == 0 {
		return fmt.Errorf("empty batch")
	}
	if len(out) < len(rounds) {
		return fmt.Errorf("out holds %d responses for %d rounds", len(out), len(rounds))
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.draining.Load() {
		s.mDrainRejects.Inc()
		return ErrDraining
	}
	sess := s.lookup(session)
	if sess == nil {
		return ErrNoSession
	}
	var queueNS int64
	var brownout bool
	start := s.clock()
	if s.adm != nil {
		lim := s.adm.Limiter()
		if !lim.TryAcquire() {
			return errShedLimiter
		}
		idx := s.shardIndex(session)
		dec := s.adm.Admit(idx, start, deadline, sess.priority, len(rounds))
		if !dec.OK {
			lim.Release(0, nil)
			return shedError(dec)
		}
		queueNS, brownout = dec.QueueNS, dec.Brownout
		defer func() {
			elapsed := s.clock().Sub(start)
			s.adm.Observe(idx, elapsed/time.Duration(len(rounds)))
			lim.Release(elapsed, s.clock)
		}()
	}
	if err := sess.decideBatchAt(start, rounds, out[:len(rounds)], queueNS, brownout); err != nil {
		s.mDecideErrs.Inc()
		return err
	}
	for i := range rounds {
		s.accountDeadline(start, deadline, &out[i])
	}
	s.mDecisions.Add(int64(len(rounds)))
	s.mBatches.Inc()
	return nil
}

// errShedLimiter is the preallocated limiter rejection so the in-process
// fast path sheds without allocating.
var errShedLimiter = &ShedError{Outcome: admission.ShedLimiter}

// shedError maps a rejected admission decision onto a *ShedError.
func shedError(dec admission.Decision) *ShedError {
	return &ShedError{Outcome: dec.Outcome, RetryAfter: dec.RetryAfter}
}

// accountDeadline classifies one delivered decision against its deadline:
// in-deadline decisions feed the goodput timer, late ones the late
// counter. The modeled latency is queue wait + decision latency + supply
// wait — the same sum the loadtest harness records. Unstamped requests are
// goodput by definition.
func (s *Server) accountDeadline(now time.Time, deadline time.Time, out *DecideResponse) {
	total := time.Duration(out.QueueNS + out.LatencyNS + out.WaitedNS)
	if !deadline.IsZero() && now.Add(total).After(deadline) {
		s.mLate.Inc()
		return
	}
	s.mGoodput.Observe(total)
}

// Info reports a session's health in-process (the load-test harness's
// health-poll scenario; the HTTP equivalent is GET /v1/sessions/{id}).
func (s *Server) Info(id string) (SessionInfo, error) {
	sess := s.lookup(id)
	if sess == nil {
		return SessionInfo{}, ErrNoSession
	}
	return sess.info(s.draining.Load(), s.clock()), nil
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.mDrainRejects.Inc()
		writeDraining(w)
		return
	}
	var req SessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad session request: %v", err)
		return
	}
	info, err := s.CreateSession(req)
	if err != nil {
		if errors.Is(err, ErrDraining) {
			writeDraining(w)
			return
		}
		status := http.StatusBadRequest
		if strings.HasSuffix(err.Error(), "already exists") {
			status = http.StatusConflict
		}
		writeError(w, status, "session: %v", err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess := s.lookup(id)
	if sess == nil {
		writeError(w, http.StatusNotFound, "no session %q", id)
		return
	}
	info := sess.info(s.draining.Load(), s.clock())
	// Health responses carry the server-wide decide latency so a polling
	// client sees serving load next to session health. The health path may
	// be polled at high rate, so these resolve with direct Registry.Get
	// lookups — not a full sorted Snapshot per poll.
	if v, ok := s.reg.Get("serve_decide_mean_ns"); ok {
		info.DecideMeanNS = v
	}
	if v, ok := s.reg.Get("serve_decisions_total"); ok {
		info.ServerDecisions = int64(v)
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	// Entry gate: count in-flight first, then honor drain. Drain waits for
	// the in-flight count, so a decision that passed the gate completes
	// even if StartDrain lands immediately after.
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.draining.Load() {
		s.mDrainRejects.Inc()
		writeDraining(w)
		return
	}
	sc := getScratch()
	defer putScratch(sc)
	var err error
	sc.body, err = readBody(r.Body, sc.body, maxBodyBytes)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad decide request: %v", err)
		return
	}
	if err := json.Unmarshal(sc.body, &sc.req); err != nil {
		writeError(w, http.StatusBadRequest, "bad decide request: %v", err)
		return
	}
	sess := s.lookup(sc.req.Session)
	if sess == nil {
		writeError(w, http.StatusNotFound, "no session %q", sc.req.Session)
		return
	}
	// Admission pipeline: limiter → deadline gate → session lock. The
	// limiter sits after the body read deliberately — a slow client
	// trickling its request body occupies only its connection goroutine,
	// never a concurrency slot.
	deadline := deadlineOf(sc.req.DeadlineUnixNS)
	var queueNS int64
	var brownout bool
	start := s.clock()
	if s.adm != nil {
		lim := s.adm.Limiter()
		if o := lim.Acquire(s.clock, deadline); o != admission.Accepted {
			writeShed(w, &ShedError{Outcome: o})
			return
		}
		idx := s.shardIndex(sc.req.Session)
		now := s.clock() // re-read: the limiter queue may have held us
		dec := s.adm.Admit(idx, now, deadline, sess.priority, 1)
		if !dec.OK {
			lim.Release(0, nil)
			writeShed(w, shedError(dec))
			return
		}
		queueNS, brownout = dec.QueueNS, dec.Brownout
		start = now
		defer func() {
			elapsed := s.clock().Sub(start)
			s.adm.Observe(idx, elapsed)
			lim.Release(elapsed, s.clock)
		}()
	}
	if err := sess.decideAt(start, sc.req.X, sc.req.Y, &sc.resp, queueNS, brownout); err != nil {
		s.mDecideErrs.Inc()
		writeError(w, http.StatusBadRequest, "decide: %v", err)
		return
	}
	s.accountDeadline(start, deadline, &sc.resp)
	s.mDecideTimer.Observe(s.clock().Sub(start))
	s.mDecisions.Inc()
	sc.out = sc.resp.appendJSON(sc.out[:0])
	writeRaw(w, sc.out)
}

// handleDecideBatch amortizes the HTTP exchange, the clock read, the engine
// catch-up and the session-lock hold over every round in the batch — the
// serving path for callers that coordinate many tasks per scheduling tick.
func (s *Server) handleDecideBatch(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.draining.Load() {
		s.mDrainRejects.Inc()
		writeDraining(w)
		return
	}
	sc := getScratch()
	defer putScratch(sc)
	var err error
	sc.body, err = readBody(r.Body, sc.body, maxBodyBytes)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad batch request: %v", err)
		return
	}
	if err := json.Unmarshal(sc.body, &sc.breq); err != nil {
		writeError(w, http.StatusBadRequest, "bad batch request: %v", err)
		return
	}
	if len(sc.breq.Rounds) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no rounds")
		return
	}
	sess := s.lookup(sc.breq.Session)
	if sess == nil {
		writeError(w, http.StatusNotFound, "no session %q", sc.breq.Session)
		return
	}
	// Admission pipeline: limiter → deadline gate → session lock (the
	// same ordering as handleDecide; the whole batch is one admission
	// unit costed at len(rounds) service quanta).
	deadline := deadlineOf(sc.breq.DeadlineUnixNS)
	var queueNS int64
	var brownout bool
	start := s.clock()
	if s.adm != nil {
		lim := s.adm.Limiter()
		if o := lim.Acquire(s.clock, deadline); o != admission.Accepted {
			writeShed(w, &ShedError{Outcome: o})
			return
		}
		idx := s.shardIndex(sc.breq.Session)
		now := s.clock()
		dec := s.adm.Admit(idx, now, deadline, sess.priority, len(sc.breq.Rounds))
		if !dec.OK {
			lim.Release(0, nil)
			writeShed(w, shedError(dec))
			return
		}
		queueNS, brownout = dec.QueueNS, dec.Brownout
		start = now
		defer func() {
			el := s.clock().Sub(start)
			s.adm.Observe(idx, el/time.Duration(len(sc.breq.Rounds)))
			lim.Release(el, s.clock)
		}()
	}
	results := sc.results(len(sc.breq.Rounds))
	if err := sess.decideBatchAt(start, sc.breq.Rounds, results, queueNS, brownout); err != nil {
		s.mDecideErrs.Inc()
		writeError(w, http.StatusBadRequest, "decide: %v", err)
		return
	}
	for i := range results {
		s.accountDeadline(start, deadline, &results[i])
	}
	elapsed := s.clock().Sub(start)
	s.mBatchTimer.Observe(elapsed)
	s.mDecideTimer.ObserveN(elapsed, int64(len(results)))
	s.mDecisions.Add(int64(len(results)))
	s.mBatches.Inc()
	sc.out = appendBatchJSON(sc.out[:0], sess.id, results)
	writeRaw(w, sc.out)
}

// handleMetrics renders the registry snapshot as "key value" lines.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, kv := range snap {
		fmt.Fprintf(w, "%s %s\n", kv.Key, strconv.FormatFloat(kv.Value, 'g', -1, 64))
	}
}

// StartDrain flips the server into drain mode: new sessions and new
// decisions get retryable 503s; decisions already past the gate complete.
// Idempotent.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether the server is refusing new work.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain waits until every in-flight decision has completed, or the deadline
// elapses. It returns the number of decisions still in flight (0 on a clean
// drain). Call StartDrain first.
func (s *Server) Drain(deadline time.Duration) int64 {
	if !s.draining.Load() {
		panic("serve: Drain before StartDrain")
	}
	limit := time.Now().Add(deadline)
	for {
		n := s.inflight.Load()
		if n == 0 || time.Now().After(limit) {
			return n
		}
		time.Sleep(time.Millisecond)
	}
}

// StopSessions halts every session's entanglement source (after drain, so
// no session engine owes catch-up work past shutdown).
func (s *Server) StopSessions() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sessions := make([]*session, 0, len(sh.sessions))
		for _, sess := range sh.sessions {
			sessions = append(sessions, sess)
		}
		sh.mu.Unlock()
		for _, sess := range sessions {
			sess.stop()
		}
	}
}

// WriteMetricsArtifact flushes the registry snapshot to path as a
// machine-readable artifact — the daemon's final act before exit 0.
func (s *Server) WriteMetricsArtifact(path string) error {
	a := metrics.NewArtifact("qcoordd")
	a.Config = map[string]any{
		"shards":   len(s.shards),
		"sessions": s.SessionCount(),
	}
	a.Metrics = s.reg.Snapshot()
	return a.WriteFile(path)
}

// SessionIDs lists registered session IDs in sorted order (test/debug aid).
func (s *Server) SessionIDs() []string {
	var ids []string
	for _, sh := range s.shards {
		sh.mu.Lock()
		for id := range sh.sessions {
			ids = append(ids, id)
		}
		sh.mu.Unlock()
	}
	sort.Strings(ids)
	return ids
}
