package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestTransportRetryIdempotentGET is the satellite-1 regression test: a
// connection the server kills mid-exchange (hijack + close, the
// killed-server scenario) must be retried transparently for idempotent
// GETs — and must NOT be retried for POSTs, which may have executed before
// the connection died.
func TestTransportRetryIdempotentGET(t *testing.T) {
	var getCalls, postCalls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if getCalls.Add(1) == 1 {
			// Kill the connection before writing any response: the client
			// observes EOF/reset with no way to know if we processed it.
			conn, _, err := w.(http.Hijacker).Hijack()
			if err != nil {
				t.Error(err)
				return
			}
			conn.Close()
			return
		}
		writeJSON(w, http.StatusOK, SessionInfo{ID: r.PathValue("id")})
	})
	mux.HandleFunc("POST /v1/decide", func(w http.ResponseWriter, r *http.Request) {
		postCalls.Add(1)
		conn, _, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Error(err)
			return
		}
		conn.Close()
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := NewRetryClient(ts.URL, nil, RetryConfig{Sleep: func(time.Duration) {}})
	ctx := context.Background()

	// The GET rides the retry: first attempt dies, second succeeds.
	info, err := c.Session(ctx, "t-killed")
	if err != nil {
		t.Fatalf("GET after killed connection: %v", err)
	}
	if info.ID != "t-killed" {
		t.Fatalf("retried GET decoded %+v", info)
	}
	if n := getCalls.Load(); n != 2 {
		t.Fatalf("server saw %d GETs, want 2 (one kill, one retry)", n)
	}
	if st := c.Stats(); st.Retries != 1 {
		t.Fatalf("stats = %+v, want exactly 1 retry", st)
	}

	// The POST surfaces the transport error without a replay.
	if _, err := c.Decide(ctx, "t-killed", 0, 0); err == nil {
		t.Fatal("POST on killed connection must fail")
	}
	if n := postCalls.Load(); n != 1 {
		t.Fatalf("server saw %d POSTs, want 1 (no replay)", n)
	}
	if st := c.Stats(); st.Retries != 1 {
		t.Fatalf("POST was retried: %+v", st)
	}

	// A hard-down server (connection refused) is not a transient mid-read
	// failure: no retry, the dial error surfaces.
	down := httptest.NewServer(http.NotFoundHandler())
	downURL := down.URL
	down.Close()
	c2 := NewRetryClient(downURL, nil, RetryConfig{Sleep: func(time.Duration) {}})
	if _, err := c2.Session(ctx, "x"); err == nil {
		t.Fatal("GET against closed server must fail")
	}
	if st := c2.Stats(); st.Retries != 0 {
		t.Fatalf("dial failure was retried: %+v", st)
	}
}

// TestRetryBudgetDuringFullShed is the retry-storm acceptance test: during
// a scripted full-shed window (every request answered 429 + Retry-After: 1
// — at the load-test arrival rate this models a multi-second brownout) the
// token bucket must hold the sustained retry ratio at ≤ Budget, so the
// offered load a shedding server sees stays ≤ 1.1× the no-retry baseline
// (plus the one-time burst allowance). Backoffs are virtual (injected
// sleep), making the whole schedule deterministic.
func TestRetryBudgetDuringFullShed(t *testing.T) {
	var offered atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		offered.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "serve: overloaded (shed: backlog)")
	}))
	defer ts.Close()

	var sleptNS atomic.Int64
	c := NewRetryClient(ts.URL, nil, RetryConfig{
		MaxAttempts: 4,
		StatusRetry: true,
		Sleep:       func(d time.Duration) { sleptNS.Add(int64(d)) },
		Rand:        func() float64 { return 0.5 },
	})
	ctx := context.Background()

	const originals = 1000
	for i := 0; i < originals; i++ {
		_, err := c.Decide(ctx, "t-storm", i%2, 0)
		var ae *APIError
		if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
			t.Fatalf("request %d: got %v, want 429", i, err)
		}
		if ae.RetryAfter != time.Second {
			t.Fatalf("request %d: RetryAfter = %v, want 1s", i, ae.RetryAfter)
		}
	}

	st := c.Stats()
	if st.Requests != originals {
		t.Fatalf("requests = %d, want %d", st.Requests, originals)
	}
	// Budget 0.1/request + Burst 10 seed bounds total retries.
	maxRetries := int64(0.1*originals + 10 + 1)
	if st.Retries > maxRetries {
		t.Fatalf("retries = %d, want <= %d (budget breached)", st.Retries, maxRetries)
	}
	if st.Retries < originals/20 {
		t.Fatalf("retries = %d — budget is over-suppressing (want >= %d)", st.Retries, originals/20)
	}
	if st.BudgetDenied == 0 {
		t.Fatal("a full-shed window must exhaust the retry budget")
	}
	// The server's offered load is originals + retries — bounded by the
	// 1.1× acceptance contract (plus the burst seed).
	if got := offered.Load(); got != originals+st.Retries {
		t.Fatalf("offered = %d, want %d", got, originals+st.Retries)
	}
	if got := offered.Load(); got > int64(1.1*originals)+10+1 {
		t.Fatalf("offered load %d exceeds 1.1x no-retry baseline", got)
	}
	// Every backoff honored the server's Retry-After hint exactly.
	if want := st.Retries * int64(time.Second); sleptNS.Load() != want {
		t.Fatalf("slept %dns, want %dns (Retry-After not honored)", sleptNS.Load(), want)
	}
}

// TestRetryBackoffJitter: without a Retry-After hint, retries back off
// exponentially with jitter in [d/2, d).
func TestRetryBackoffJitter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// 503 with no Retry-After header.
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "draining"})
	}))
	defer ts.Close()

	var sleeps []time.Duration
	c := NewRetryClient(ts.URL, nil, RetryConfig{
		MaxAttempts: 4,
		StatusRetry: true,
		BaseBackoff: 8 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
		Rand:        func() float64 { return 0.5 },
	})
	if _, err := c.Decide(context.Background(), "t-jitter", 0, 0); err == nil {
		t.Fatal("all-503 server must fail the call")
	}
	// Attempts 1..3 back off 8ms, 16ms, then the 32ms doubling caps at
	// 20ms; Rand=0.5 lands each at 3/4 of the nominal value.
	want := []time.Duration{6 * time.Millisecond, 12 * time.Millisecond, 15 * time.Millisecond}
	if len(sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %d backoffs", sleeps, len(want))
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Fatalf("backoff %d = %v, want %v", i, sleeps[i], want[i])
		}
	}
}

// TestHedgedSessionReads: with HedgeAfter set, a stalled info read fires a
// second identical GET and the fast response wins; a fast read never
// hedges.
func TestHedgedSessionReads(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// First read stalls until the test ends (or the client gives
			// up): the hedge must win long before.
			select {
			case <-release:
			case <-r.Context().Done():
				return
			}
		}
		writeJSON(w, http.StatusOK, SessionInfo{ID: r.PathValue("id")})
	})
	ts := httptest.NewServer(mux)
	defer func() {
		close(release)
		ts.Close()
	}()

	c := NewRetryClient(ts.URL, nil, RetryConfig{HedgeAfter: 2 * time.Millisecond})
	ctx := context.Background()
	done := make(chan struct{})
	var info SessionInfo
	var err error
	go func() {
		info, err = c.Session(ctx, "t-hedge")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("hedged read did not complete")
	}
	if err != nil {
		t.Fatalf("hedged read: %v", err)
	}
	if info.ID != "t-hedge" {
		t.Fatalf("hedged read decoded %+v", info)
	}
	if st := c.Stats(); st.Hedges != 1 {
		t.Fatalf("stats = %+v, want exactly 1 hedge", st)
	}

	// A fast read with a generous hedge trigger never fires the hedge.
	c2 := NewRetryClient(ts.URL, nil, RetryConfig{HedgeAfter: 5 * time.Second})
	if _, err := c2.Session(ctx, "t-fast"); err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Hedges != 0 {
		t.Fatalf("fast read hedged: %+v", st)
	}
}

// TestAPIErrorRetryable pins the retryable-status contract: the drain 503
// and the shed 429, nothing else.
func TestAPIErrorRetryable(t *testing.T) {
	cases := []struct {
		status int
		want   bool
	}{
		{http.StatusServiceUnavailable, true},
		{http.StatusTooManyRequests, true},
		{http.StatusNotFound, false},
		{http.StatusBadRequest, false},
		{http.StatusInternalServerError, false},
	}
	for _, tc := range cases {
		e := &APIError{Status: tc.status}
		if e.Retryable() != tc.want {
			t.Fatalf("Retryable(%d) = %v, want %v", tc.status, e.Retryable(), tc.want)
		}
	}
}
