package faults

import (
	"testing"
	"time"

	"repro/internal/entangle"
)

// queueSupplier is a finite FIFO of visibilities for exercising the wrapper.
type queueSupplier struct{ vs []float64 }

func (q *queueSupplier) TryConsume(time.Duration) (float64, bool) {
	if len(q.vs) == 0 {
		return 0, false
	}
	v := q.vs[0]
	q.vs = q.vs[1:]
	return v, true
}

func fill(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestSupplierOutageStarves(t *testing.T) {
	sched := Schedule{Windows: []Window{
		{Kind: KindSourceOutage, Start: ms(10), End: ms(20)},
	}}
	s := NewSupplier(&queueSupplier{vs: fill(100, 0.9)}, sched)
	if _, ok := s.TryConsume(ms(5)); !ok {
		t.Fatal("nominal consumption failed")
	}
	if _, ok := s.TryConsume(ms(15)); ok {
		t.Fatal("consumption succeeded during an outage")
	}
	if v, ok := s.TryConsume(ms(25)); !ok || v != 0.9 {
		t.Fatalf("post-outage consume: %v %v", v, ok)
	}
}

func TestSupplierThinsDeterministically(t *testing.T) {
	// Severity 0.25: each delivered pair costs 4 from the inner supplier
	// (3 burned + 1 delivered). 100 inner pairs → exactly 25 deliveries.
	sched := Schedule{Windows: []Window{
		{Kind: KindFiberLossBurst, Start: 0, End: time.Hour, Severity: 0.25},
	}}
	s := NewSupplier(&queueSupplier{vs: fill(100, 0.9)}, sched)
	delivered := 0
	for i := 0; i < 1000; i++ {
		if _, ok := s.TryConsume(ms(1)); ok {
			delivered++
		}
	}
	if delivered != 25 {
		t.Fatalf("delivered %d of 100 at severity 0.25, want exactly 25", delivered)
	}
}

func TestSupplierVisibilityScaledDuringSpike(t *testing.T) {
	sched := Schedule{Windows: []Window{
		{Kind: KindDecoherenceSpike, Start: ms(10), End: ms(20), Severity: 0.5},
	}}
	s := NewSupplier(entangle.PerfectSupplier{Visibility: 0.8}, sched)
	if v, _ := s.TryConsume(ms(5)); v != 0.8 {
		t.Fatalf("nominal visibility %v", v)
	}
	if v, _ := s.TryConsume(ms(15)); v != 0.4 {
		t.Fatalf("spiked visibility %v, want 0.4", v)
	}
	if v, _ := s.TryConsume(ms(25)); v != 0.8 {
		t.Fatalf("restored visibility %v", v)
	}
}

func TestSupplierFlushDrainsOnce(t *testing.T) {
	sched := Schedule{Windows: []Window{
		{Kind: KindPoolFlush, Start: ms(10), End: ms(10)},
	}}
	inner := &queueSupplier{vs: fill(10, 0.9)}
	s := NewSupplier(inner, sched)
	if _, ok := s.TryConsume(ms(1)); !ok {
		t.Fatal("pre-flush consume failed")
	}
	// First consume past the flush instant drains the 9 remaining pairs.
	if _, ok := s.TryConsume(ms(11)); ok {
		t.Fatal("consume right after the flush should find nothing")
	}
	if len(inner.vs) != 0 {
		t.Fatalf("flush left %d pairs in the inner supplier", len(inner.vs))
	}
	// The flush applies once: refilled supply flows again.
	inner.vs = fill(3, 0.7)
	if v, ok := s.TryConsume(ms(12)); !ok || v != 0.7 {
		t.Fatalf("post-flush consume: %v %v", v, ok)
	}
}

func TestSupplierFlushBoundedOnInfiniteInner(t *testing.T) {
	sched := Schedule{Windows: []Window{
		{Kind: KindPoolFlush, Start: ms(10), End: ms(10)},
	}}
	s := NewSupplier(entangle.PerfectSupplier{Visibility: 1}, sched)
	// Must terminate despite the inner supplier never running dry.
	if _, ok := s.TryConsume(ms(11)); !ok {
		t.Fatal("perfect supplier should still deliver after a bounded drain")
	}
}

func TestSupplierValidatesSchedule(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSupplier with an invalid schedule should panic")
		}
	}()
	NewSupplier(entangle.PerfectSupplier{Visibility: 1}, Schedule{Windows: []Window{
		{Kind: KindFiberLossBurst, Start: 0, End: ms(1), Severity: 2},
	}})
}
