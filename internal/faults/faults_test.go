package faults

import (
	"strings"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestWindowValidate(t *testing.T) {
	cases := []struct {
		w  Window
		ok bool
	}{
		{Window{Kind: KindSourceOutage, Start: 0, End: ms(1)}, true},
		{Window{Kind: KindNone, Start: 0, End: ms(1)}, false},
		{Window{Kind: Kind(99), Start: 0, End: ms(1)}, false},
		{Window{Kind: KindSourceOutage, Start: ms(2), End: ms(1)}, false},
		{Window{Kind: KindSourceOutage, Start: -ms(1), End: ms(1)}, false},
		{Window{Kind: KindFiberLossBurst, Start: 0, End: ms(1), Severity: 0.5}, true},
		{Window{Kind: KindFiberLossBurst, Start: 0, End: ms(1), Severity: 1.5}, false},
		{Window{Kind: KindDecoherenceSpike, Start: 0, End: ms(1), Severity: 0}, false},
		{Window{Kind: KindDecoherenceSpike, Start: 0, End: ms(1), Severity: 0.1}, true},
		{Window{Kind: KindPoolFlush, Start: ms(1), End: ms(1)}, true},
	}
	for i, c := range cases {
		if err := c.w.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d (%+v): err=%v, want ok=%v", i, c.w, err, c.ok)
		}
	}
}

func TestScheduleActiveAtComposesSeverities(t *testing.T) {
	s := Schedule{Windows: []Window{
		{Kind: KindFiberLossBurst, Start: ms(0), End: ms(10), Severity: 0.5},
		{Kind: KindFiberLossBurst, Start: ms(5), End: ms(15), Severity: 0.4},
	}}
	if on, sev := s.ActiveAt(KindFiberLossBurst, ms(7)); !on || sev != 0.2 {
		t.Fatalf("overlap: on=%v sev=%v, want true 0.2", on, sev)
	}
	if on, sev := s.ActiveAt(KindFiberLossBurst, ms(12)); !on || sev != 0.4 {
		t.Fatalf("tail: on=%v sev=%v, want true 0.4", on, sev)
	}
	// End is exclusive.
	if on, _ := s.ActiveAt(KindFiberLossBurst, ms(15)); on {
		t.Fatal("window end must be exclusive")
	}
	if on, sev := s.ActiveAt(KindSourceOutage, ms(7)); on || sev != 1 {
		t.Fatalf("wrong kind: on=%v sev=%v", on, sev)
	}
}

func TestSupplyAndVisibilityFactors(t *testing.T) {
	s := Schedule{Windows: []Window{
		{Kind: KindSourceOutage, Start: ms(0), End: ms(1)},
		{Kind: KindFiberLossBurst, Start: ms(2), End: ms(3), Severity: 0.5},
		{Kind: KindBSMFailure, Start: ms(2), End: ms(4), Severity: 0.4},
		{Kind: KindDecoherenceSpike, Start: ms(5), End: ms(6), Severity: 0.3},
	}}
	if f := s.SupplyFactor(ms(0)); f != 0 {
		t.Fatalf("outage supply factor = %v", f)
	}
	if f := s.SupplyFactor(ms(2)); f != 0.2 {
		t.Fatalf("burst×bsm supply factor = %v, want 0.2", f)
	}
	if f := s.SupplyFactor(ms(7)); f != 1 {
		t.Fatalf("nominal supply factor = %v", f)
	}
	if f := s.VisibilityFactor(ms(5)); f != 0.3 {
		t.Fatalf("spike visibility factor = %v", f)
	}
	if f := s.VisibilityFactor(ms(4)); f != 1 {
		t.Fatalf("nominal visibility factor = %v", f)
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	profiles := []Profile{
		{Kind: KindSourceOutage, MTBF: ms(10), MTTR: ms(2)},
		{Kind: KindFiberLossBurst, MTBF: ms(7), MTTR: ms(3), Severity: 0.1},
		{Kind: KindPoolFlush, MTBF: ms(20)},
	}
	a := Generate(42, profiles, ms(500))
	b := Generate(42, profiles, ms(500))
	if len(a.Windows) != len(b.Windows) {
		t.Fatalf("window counts differ: %d vs %d", len(a.Windows), len(b.Windows))
	}
	for i := range a.Windows {
		if a.Windows[i] != b.Windows[i] {
			t.Fatalf("window %d differs: %+v vs %+v", i, a.Windows[i], b.Windows[i])
		}
	}
	if len(a.Windows) == 0 {
		t.Fatal("a 500ms horizon with 10ms MTBFs should produce windows")
	}
	if c := Generate(43, profiles, ms(500)); len(c.Windows) == len(a.Windows) {
		same := true
		for i := range c.Windows {
			if c.Windows[i] != a.Windows[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical timelines")
		}
	}
}

func TestGenerateRespectsHorizonAndOrder(t *testing.T) {
	profiles := []Profile{
		{Kind: KindSourceOutage, MTBF: ms(5), MTTR: ms(5)},
		{Kind: KindDecoherenceSpike, MTBF: ms(6), MTTR: ms(4), Severity: 0.2},
	}
	horizon := ms(200)
	s := Generate(1, profiles, horizon)
	if err := s.Validate(); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	prev := time.Duration(-1)
	for _, w := range s.Windows {
		if w.Start < prev {
			t.Fatalf("windows not sorted by start: %v after %v", w.Start, prev)
		}
		prev = w.Start
		if w.Start >= horizon || w.End > horizon {
			t.Fatalf("window %+v exceeds horizon %v", w, horizon)
		}
	}
}

func TestGeneratePerProfileStreamsIndependent(t *testing.T) {
	// Adding a profile must not change the windows the first profile draws:
	// each profile derives its own stream from the base seed.
	p0 := Profile{Kind: KindSourceOutage, MTBF: ms(10), MTTR: ms(2)}
	solo := Generate(9, []Profile{p0}, ms(300))
	both := Generate(9, []Profile{p0, {Kind: KindPoolFlush, MTBF: ms(15)}}, ms(300))
	var outages []Window
	for _, w := range both.Windows {
		if w.Kind == KindSourceOutage {
			outages = append(outages, w)
		}
	}
	if len(outages) != len(solo.Windows) {
		t.Fatalf("outage count changed when a profile was added: %d vs %d", len(outages), len(solo.Windows))
	}
	for i := range outages {
		if outages[i] != solo.Windows[i] {
			t.Fatalf("outage window %d changed: %+v vs %+v", i, outages[i], solo.Windows[i])
		}
	}
}

func TestGenerateValidatesProfiles(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate with a zero-MTBF profile should panic")
		}
	}()
	Generate(1, []Profile{{Kind: KindSourceOutage, MTTR: ms(1)}}, ms(10))
}

func TestTimelineRendersEveryWindow(t *testing.T) {
	s := Schedule{Windows: []Window{
		{Kind: KindPoolFlush, Start: ms(3), End: ms(3)},
		{Kind: KindSourceOutage, Start: ms(1), End: ms(2)},
	}}
	out := s.Timeline()
	if !strings.Contains(out, "source-outage") || !strings.Contains(out, "pool-flush") {
		t.Fatalf("timeline missing windows:\n%s", out)
	}
	if strings.Index(out, "source-outage") > strings.Index(out, "pool-flush") {
		t.Fatalf("timeline not sorted by start:\n%s", out)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindNone; k < numKinds; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "Kind(") {
			t.Fatalf("kind %d has no name", int(k))
		}
	}
	if NumKinds != 5 {
		t.Fatalf("NumKinds = %d, want 5", NumKinds)
	}
}
