// Package faults is the deterministic fault-injection layer for the
// entanglement supply chain. The paper's architecture (Figure 1, §3)
// assumes a continuous stream of Bell pairs from SPDC sources through
// fiber and repeaters into QNIC pools; real entanglement distribution is
// bursty and failure-prone, so this package models the §3 caveats as
// first-class, reproducible events:
//
//   - source outages (an MTBF/MTTR on/off process on entangle.Service),
//   - fiber-loss bursts (transient delivery-probability collapse),
//   - QNIC decoherence spikes (temporary T2 reduction in entangle.Pool),
//   - repeater BSM-failure windows (swap success collapse along a chain),
//   - pool corruption/flush events (quantum memory loss).
//
// Everything is driven by the netsim.Engine clock and xrand derived
// streams: a fault timeline is a pure function of (seed, profiles), never
// of event interleaving or worker count, so every chaos run replays
// bit-for-bit.
package faults

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/xrand"
)

// Kind identifies a fault class.
type Kind int

const (
	// KindNone is the absence of a fault (nominal operation); scripted
	// phase tables use it for recovery windows.
	KindNone Kind = iota
	// KindSourceOutage switches the SPDC source off for the window.
	KindSourceOutage
	// KindFiberLossBurst multiplies the fiber delivery probability by the
	// window's severity.
	KindFiberLossBurst
	// KindDecoherenceSpike multiplies the pool's effective T2 by the
	// window's severity.
	KindDecoherenceSpike
	// KindBSMFailure multiplies a repeater chain's BSM success probability
	// by the window's severity; with S segments the end-to-end delivery
	// rate collapses by severity^(S−1).
	KindBSMFailure
	// KindPoolFlush drops every stored pair at the window's start (the
	// window has no duration — corruption is an instant, repair is refill).
	KindPoolFlush
	numKinds
)

// String names the kind for reports.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindSourceOutage:
		return "source-outage"
	case KindFiberLossBurst:
		return "fiber-loss-burst"
	case KindDecoherenceSpike:
		return "decoherence-spike"
	case KindBSMFailure:
		return "bsm-failure"
	case KindPoolFlush:
		return "pool-flush"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// NumKinds is the number of real fault kinds (excluding KindNone).
const NumKinds = int(numKinds) - 1

// Window is one fault activation: the fault is in force on [Start, End).
type Window struct {
	Kind  Kind
	Start time.Duration
	End   time.Duration
	// Severity is kind-specific: the delivery-probability multiplier for
	// fiber-loss bursts, the T2 multiplier for decoherence spikes, and the
	// BSM-success multiplier for repeater failures. Outages and flushes
	// ignore it.
	Severity float64
}

// Duration returns the window length.
func (w Window) Duration() time.Duration { return w.End - w.Start }

// Validate checks one window.
func (w Window) Validate() error {
	if w.Kind <= KindNone || w.Kind >= numKinds {
		return fmt.Errorf("faults: window has invalid kind %d", int(w.Kind))
	}
	if w.End < w.Start || w.Start < 0 {
		return fmt.Errorf("faults: window [%v, %v) is not a valid interval", w.Start, w.End)
	}
	switch w.Kind {
	case KindFiberLossBurst, KindBSMFailure:
		if w.Severity < 0 || w.Severity > 1 {
			return fmt.Errorf("faults: %v severity %v outside [0,1]", w.Kind, w.Severity)
		}
	case KindDecoherenceSpike:
		if w.Severity <= 0 || w.Severity > 1 {
			return fmt.Errorf("faults: %v severity %v outside (0,1]", w.Kind, w.Severity)
		}
	}
	return nil
}

// Schedule is a deterministic fault timeline: windows sorted by start time
// (stable on ties). A Schedule is data, not behavior — the Injector applies
// it to a live supply chain, and Supplier applies it to an engine-less one.
type Schedule struct {
	Windows []Window
}

// Validate checks every window.
func (s Schedule) Validate() error {
	for i, w := range s.Windows {
		if err := w.Validate(); err != nil {
			return fmt.Errorf("window %d: %w", i, err)
		}
	}
	return nil
}

// sorted returns the windows ordered by (Start, original index).
func (s Schedule) sorted() []Window {
	out := append([]Window(nil), s.Windows...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// ActiveAt returns whether any window of the given kind is in force at t,
// and the product of the active windows' severities (1 when none).
func (s Schedule) ActiveAt(kind Kind, t time.Duration) (active bool, severity float64) {
	severity = 1
	for _, w := range s.Windows {
		if w.Kind == kind && w.Start <= t && t < w.End {
			active = true
			severity *= w.Severity
		}
	}
	return active, severity
}

// SupplyFactor returns the delivery-rate multiplier the schedule imposes at
// t for an engine-less supplier: 0 during an outage, otherwise the product
// of active fiber-burst and BSM-failure severities.
func (s Schedule) SupplyFactor(t time.Duration) float64 {
	if down, _ := s.ActiveAt(KindSourceOutage, t); down {
		return 0
	}
	f := 1.0
	if on, sev := s.ActiveAt(KindFiberLossBurst, t); on {
		f *= sev
	}
	if on, sev := s.ActiveAt(KindBSMFailure, t); on {
		f *= sev
	}
	return f
}

// VisibilityFactor returns the multiplier on delivered visibility at t for
// an engine-less supplier: decoherence spikes scale it by their severity
// (the coarse stand-in for the exact piecewise decay Pool.SetT2Scale
// applies in engine-driven runs).
func (s Schedule) VisibilityFactor(t time.Duration) float64 {
	if on, sev := s.ActiveAt(KindDecoherenceSpike, t); on {
		return sev
	}
	return 1
}

// Timeline renders the schedule as one line per window for reports.
func (s Schedule) Timeline() string {
	out := ""
	for _, w := range s.sorted() {
		if w.Kind == KindPoolFlush {
			out += fmt.Sprintf("%-18s at %v\n", w.Kind, w.Start)
			continue
		}
		out += fmt.Sprintf("%-18s [%v, %v) severity %.3g\n", w.Kind, w.Start, w.End, w.Severity)
	}
	return out
}

// Profile is an MTBF/MTTR on/off renewal process for one fault kind: the
// component stays up for an Exp(MTBF) time, then down for an Exp(MTTR)
// time, repeating over the horizon. For KindPoolFlush the MTTR is ignored
// (corruption is instantaneous) and MTBF is the mean time between flushes.
type Profile struct {
	Kind     Kind
	MTBF     time.Duration
	MTTR     time.Duration
	Severity float64
}

// Validate checks the profile.
func (p Profile) Validate() error {
	if p.MTBF <= 0 {
		return fmt.Errorf("faults: %v profile needs a positive MTBF", p.Kind)
	}
	if p.Kind != KindPoolFlush && p.MTTR <= 0 {
		return fmt.Errorf("faults: %v profile needs a positive MTTR", p.Kind)
	}
	return Window{Kind: p.Kind, Severity: p.Severity}.Validate()
}

// Generate samples a fault timeline over [0, horizon): profile i draws its
// on/off process from xrand.Derive(base, i), so the schedule depends only
// on (base, profiles, horizon) — never on evaluation order, other streams,
// or worker count. Identical inputs yield identical timelines.
func Generate(base uint64, profiles []Profile, horizon time.Duration) Schedule {
	var s Schedule
	for i, p := range profiles {
		if err := p.Validate(); err != nil {
			panic(err)
		}
		rng := xrand.Derive(base, uint64(i))
		t := time.Duration(0)
		for {
			up := time.Duration(rng.ExpFloat64() * float64(p.MTBF))
			t += up
			if t >= horizon {
				break
			}
			w := Window{Kind: p.Kind, Start: t, End: t, Severity: p.Severity}
			if p.Kind != KindPoolFlush {
				down := time.Duration(rng.ExpFloat64() * float64(p.MTTR))
				w.End = t + down
				if w.End > horizon {
					w.End = horizon
				}
				t = w.End
			}
			s.Windows = append(s.Windows, w)
		}
	}
	s.Windows = Schedule{Windows: s.Windows}.sorted()
	return s
}
