package faults

import (
	"time"

	"repro/internal/entangle"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

// Target is the slice of the supply chain an Injector manipulates. Service
// and Pool are required for the fault kinds that touch them; Chain is
// optional and, when present, gives KindBSMFailure its repeater semantics
// (severity^(Segments−1) rate collapse instead of a bare delivery scale).
type Target struct {
	Service *entangle.Service
	Pool    *entangle.Pool
	Chain   *entangle.RepeaterChain
}

// Stats aggregates what an injector actually did.
type Stats struct {
	// Windows counts applied windows per kind (indexed by Kind).
	Windows [numKinds]int64
	// FaultedTime sums window durations per kind (indexed by Kind).
	FaultedTime [numKinds]time.Duration
	// FlushedPairs counts pairs lost to pool-flush events.
	FlushedPairs int64
}

// Injection counters in the default registry, labeled by fault kind.
var mWindows = func() map[Kind]*metrics.Counter {
	m := make(map[Kind]*metrics.Counter, NumKinds)
	for k := KindNone + 1; k < numKinds; k++ {
		m[k] = metrics.Default().Counter("faults_windows_total", "kind", k.String())
	}
	return m
}()

// Injector replays a Schedule against a Target on a discrete-event engine.
// Arm schedules every window's start and end as engine events, so fault
// transitions interleave deterministically with the simulated traffic
// (an event at time t is applied before any round the driver runs at t).
//
// Overlapping windows compose: the injector recomputes the full composite
// state (outage, delivery scale, T2 scale) from the set of active windows
// at every transition, so severities multiply while any overlap lasts and
// restore exactly when the last window closes.
type Injector struct {
	engine *netsim.Engine
	sched  Schedule
	tgt    Target
	stats  Stats
	armed  bool
}

// NewInjector binds a schedule to a target. The schedule is validated; the
// target must have a Service and a Pool.
func NewInjector(e *netsim.Engine, sched Schedule, tgt Target) *Injector {
	if err := sched.Validate(); err != nil {
		panic(err)
	}
	if tgt.Service == nil || tgt.Pool == nil {
		panic("faults: injector target needs a Service and a Pool")
	}
	return &Injector{engine: e, sched: sched, tgt: tgt}
}

// Arm schedules every window transition on the engine. Call once, before
// running the simulation past the first window.
func (inj *Injector) Arm() {
	if inj.armed {
		panic("faults: injector armed twice")
	}
	inj.armed = true
	for _, w := range inj.sched.sorted() {
		w := w
		inj.engine.ScheduleAt(w.Start, func() { inj.open(w) })
		if w.Kind != KindPoolFlush && w.End > w.Start {
			inj.engine.ScheduleAt(w.End, func() { inj.apply() })
		}
	}
}

// open applies a window's start transition.
func (inj *Injector) open(w Window) {
	inj.stats.Windows[w.Kind]++
	inj.stats.FaultedTime[w.Kind] += w.Duration()
	mWindows[w.Kind].Inc()
	if w.Kind == KindPoolFlush {
		inj.stats.FlushedPairs += int64(inj.tgt.Pool.Flush())
		return
	}
	inj.apply()
}

// apply recomputes the composite fault state from the windows active now
// and pushes it into the target.
func (inj *Injector) apply() {
	now := inj.engine.Now()

	down, _ := inj.sched.ActiveAt(KindSourceOutage, now)
	inj.tgt.Service.SetOutage(down)

	scale := 1.0
	if on, sev := inj.sched.ActiveAt(KindFiberLossBurst, now); on {
		scale *= sev
	}
	if on, sev := inj.sched.ActiveAt(KindBSMFailure, now); on {
		scale *= inj.bsmDeliveryScale(sev)
	}
	inj.tgt.Service.SetDeliveryScale(scale)

	t2 := 1.0
	if on, sev := inj.sched.ActiveAt(KindDecoherenceSpike, now); on {
		t2 = sev
	}
	inj.tgt.Pool.SetT2Scale(now, t2)
}

// bsmDeliveryScale converts a BSM-success multiplier into an end-to-end
// delivery-rate multiplier. With a chain of S segments, each of the S−1
// swaps succeeds with scaled probability, so the rate collapses by
// sev^(S−1); without a chain the severity applies directly.
func (inj *Injector) bsmDeliveryScale(sev float64) float64 {
	if inj.tgt.Chain == nil || inj.tgt.Chain.Segments <= 1 {
		return sev
	}
	scale := 1.0
	for i := 1; i < inj.tgt.Chain.Segments; i++ {
		scale *= sev
	}
	return scale
}

// Stats returns what the injector has applied so far.
func (inj *Injector) Stats() Stats { return inj.stats }
