package faults

import (
	"time"

	"repro/internal/entangle"
)

// Supplier wraps an entangle.Supplier with a fault timeline for drivers
// that advance time themselves instead of running a discrete-event engine
// (cmd/qlbsim's slot loop, loadbalance sweeps). It is fully deterministic:
// fault effects are pure functions of the schedule and the consumption
// clock, with no sampling.
//
//   - Source outages starve consumption outright.
//   - Fiber-loss bursts and BSM-failure windows thin the supply by their
//     severity: delivering one pair costs 1/severity pairs from the inner
//     supplier (the lost ones were measured out in fiber), tracked by a
//     deterministic debt accumulator rather than coin flips.
//   - Decoherence spikes scale delivered visibility by their severity.
//   - Pool flushes drain the inner supplier once, at the flush instant.
type Supplier struct {
	Inner entangle.Supplier
	Sched Schedule

	lossDebt float64
	flushed  int // flush windows already applied (by sorted position)
}

// NewSupplier wraps inner with the schedule.
func NewSupplier(inner entangle.Supplier, sched Schedule) *Supplier {
	if err := sched.Validate(); err != nil {
		panic(err)
	}
	return &Supplier{Inner: inner, Sched: sched}
}

// TryConsume implements entangle.Supplier.
func (f *Supplier) TryConsume(now time.Duration) (float64, bool) {
	f.applyFlushes(now)
	factor := f.Sched.SupplyFactor(now)
	if factor == 0 {
		return 0, false
	}
	if factor < 1 {
		// Thin deterministically: a delivered pair costs 1/factor source
		// pairs; burn the extra (1/factor − 1) as fiber losses first.
		f.lossDebt += 1/factor - 1
		for f.lossDebt >= 1 {
			if _, ok := f.Inner.TryConsume(now); !ok {
				f.lossDebt = 0
				return 0, false
			}
			f.lossDebt--
		}
	}
	v, ok := f.Inner.TryConsume(now)
	if !ok {
		return 0, false
	}
	return v * f.Sched.VisibilityFactor(now), true
}

// applyFlushes drains the inner supplier for every flush window whose start
// has passed since the last call.
func (f *Supplier) applyFlushes(now time.Duration) {
	i := 0
	for _, w := range f.Sched.sorted() {
		if w.Kind != KindPoolFlush || w.Start > now {
			continue
		}
		i++
		if i <= f.flushed {
			continue
		}
		// Bounded drain: buffered suppliers run dry quickly; the bound
		// keeps an (idealized) infinite supplier from hanging the run.
		for n := 0; n < 1<<20; n++ {
			if _, ok := f.Inner.TryConsume(now); !ok {
				break
			}
		}
	}
	f.flushed = i
}
