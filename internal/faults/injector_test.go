package faults

import (
	"math"
	"testing"
	"time"

	"repro/internal/entangle"
	"repro/internal/netsim"
	"repro/internal/xrand"
)

func testQNIC() entangle.QNICConfig {
	return entangle.QNICConfig{
		StorageLimit:   100 * time.Microsecond,
		CoherenceT2:    200 * time.Microsecond,
		MeasureLatency: time.Microsecond,
	}
}

func testRig(sched Schedule, chain *entangle.RepeaterChain) (*netsim.Engine, *entangle.Pool, *entangle.Service, *Injector) {
	engine := &netsim.Engine{}
	pool := entangle.NewPool(testQNIC(), 0)
	svc := entangle.StartService(engine, entangle.DefaultSource(), pool, xrand.New(5, 1))
	inj := NewInjector(engine, sched, Target{Service: svc, Pool: pool, Chain: chain})
	inj.Arm()
	return engine, pool, svc, inj
}

func TestInjectorSourceOutageWindow(t *testing.T) {
	sched := Schedule{Windows: []Window{
		{Kind: KindSourceOutage, Start: 200 * time.Microsecond, End: 600 * time.Microsecond},
	}}
	engine, _, svc, inj := testRig(sched, nil)

	engine.RunUntil(199 * time.Microsecond)
	before := svc.Stats()
	if before.Suppressed != 0 {
		t.Fatalf("suppressed before the window: %+v", before)
	}
	engine.RunUntil(599 * time.Microsecond)
	during := svc.Stats()
	if during.Generated != before.Generated {
		t.Fatalf("source generated during outage: %d → %d", before.Generated, during.Generated)
	}
	if during.Suppressed == 0 {
		t.Fatal("outage ticks not suppressed")
	}
	engine.RunUntil(time.Millisecond)
	after := svc.Stats()
	if after.Generated <= during.Generated {
		t.Fatal("source did not recover after the window")
	}
	if after.Suppressed != during.Suppressed {
		t.Fatal("suppression continued past the window")
	}
	st := inj.Stats()
	if st.Windows[KindSourceOutage] != 1 || st.FaultedTime[KindSourceOutage] != 400*time.Microsecond {
		t.Fatalf("injector stats: %+v", st)
	}
	svc.Stop()
}

func TestInjectorOverlappingBurstsCompose(t *testing.T) {
	// Two bursts overlap on [2ms, 3ms); severities must multiply there and
	// restore exactly when the last window closes. We can't read the scale
	// directly, so compare delivery rates across the three regimes.
	sched := Schedule{Windows: []Window{
		{Kind: KindFiberLossBurst, Start: time.Millisecond, End: 3 * time.Millisecond, Severity: 0.3},
		{Kind: KindFiberLossBurst, Start: 2 * time.Millisecond, End: 4 * time.Millisecond, Severity: 0.3},
	}}
	engine, _, svc, _ := testRig(sched, nil)

	rate := func(until time.Duration) func() int64 {
		engine.RunUntil(until)
		d := svc.Stats().Delivered
		return func() int64 { return svc.Stats().Delivered - d }
	}
	// 1ms windows each contain 100 generation ticks — enough to separate
	// severity 1 (p≈0.91), 0.3 (≈0.27) and 0.09 (≈0.08) decisively.
	nominal := rate(0)
	engine.RunUntil(time.Millisecond)
	n := nominal()
	single := rate(time.Millisecond)
	engine.RunUntil(2 * time.Millisecond)
	s1 := single()
	double := rate(2 * time.Millisecond)
	engine.RunUntil(3 * time.Millisecond)
	s2 := double()
	if !(n > s1 && s1 > s2) {
		t.Fatalf("delivery rates not ordered: nominal=%d single=%d overlap=%d", n, s1, s2)
	}
	restored := rate(4 * time.Millisecond)
	engine.RunUntil(5 * time.Millisecond)
	r := restored()
	if r < n-30 {
		t.Fatalf("delivery did not restore after both windows: nominal=%d restored=%d", n, r)
	}
	svc.Stop()
}

func TestInjectorDecoherenceSpikeExactDecay(t *testing.T) {
	// One pair stored at t=0; a spike [20µs, 40µs) at T2 scale 0.25; consume
	// at 60µs. The inherited piecewise law must hold exactly.
	q := testQNIC()
	engine := &netsim.Engine{}
	pool := entangle.NewPool(q, 0)
	// A silent source (outage for the whole run) keeps the service valid but
	// inert, so the only pair is the one we plant.
	sched := Schedule{Windows: []Window{
		{Kind: KindSourceOutage, Start: 0, End: time.Second},
		{Kind: KindDecoherenceSpike, Start: 20 * time.Microsecond, End: 40 * time.Microsecond, Severity: 0.25},
	}}
	svc := entangle.StartService(engine, entangle.DefaultSource(), pool, xrand.New(5, 1))
	NewInjector(engine, sched, Target{Service: svc, Pool: pool}).Arm()

	pool.Add(entangle.Pair{ArrivedAt: 0, V0: 1})
	engine.RunUntil(60 * time.Microsecond)
	v, ok := pool.TryConsume(60 * time.Microsecond)
	if !ok {
		t.Fatal("planted pair should be live")
	}
	T2 := float64(q.CoherenceT2)
	spike := float64(20 * time.Microsecond)
	total := float64(60 * time.Microsecond)
	want := math.Exp(-total/T2) * math.Exp(-spike*(1/(T2*0.25)-1/T2))
	if math.Abs(v-want) > 1e-12 {
		t.Fatalf("spiked visibility %v, want %v", v, want)
	}
	svc.Stop()
}

func TestInjectorPoolFlush(t *testing.T) {
	sched := Schedule{Windows: []Window{
		{Kind: KindSourceOutage, Start: 0, End: time.Second},
		{Kind: KindPoolFlush, Start: 30 * time.Microsecond, End: 30 * time.Microsecond},
	}}
	engine, pool, svc, inj := testRig(sched, nil)
	for i := 0; i < 4; i++ {
		pool.Add(entangle.Pair{ArrivedAt: 0, V0: 1})
	}
	engine.RunUntil(50 * time.Microsecond)
	if pool.Len() != 0 {
		t.Fatalf("flush left %d pairs", pool.Len())
	}
	if inj.Stats().FlushedPairs != 4 {
		t.Fatalf("FlushedPairs = %d, want 4", inj.Stats().FlushedPairs)
	}
	svc.Stop()
}

func TestInjectorBSMFailureUsesChainSegments(t *testing.T) {
	chain := &entangle.RepeaterChain{Segments: 4, Source: entangle.DefaultSource(), BSMSuccess: 0.5}
	inj := &Injector{tgt: Target{Chain: chain}}
	// 4 segments → 3 swaps → severity³.
	if got := inj.bsmDeliveryScale(0.5); math.Abs(got-0.125) > 1e-15 {
		t.Fatalf("chain scale = %v, want 0.125", got)
	}
	if got := (&Injector{}).bsmDeliveryScale(0.5); got != 0.5 {
		t.Fatalf("chainless scale = %v, want 0.5", got)
	}
}

func TestInjectorRejectsBadTarget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewInjector without a pool should panic")
		}
	}()
	engine := &netsim.Engine{}
	pool := entangle.NewPool(testQNIC(), 0)
	svc := entangle.StartService(engine, entangle.DefaultSource(), pool, xrand.New(1, 1))
	defer svc.Stop()
	NewInjector(engine, Schedule{}, Target{Service: svc})
}

func TestInjectorArmTwicePanics(t *testing.T) {
	_, _, svc, inj := testRig(Schedule{}, nil)
	defer svc.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("double Arm should panic")
		}
	}()
	inj.Arm()
}
