package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/run"
)

// RunConfig parametrizes a resilient experiment run: worker count, failure
// policy, per-experiment supervision and checkpoint/resume.
type RunConfig struct {
	// Workers is the fan-out width (<= 0 means the parallel default).
	Workers int
	// TaskTimeout bounds each experiment (0 = unbounded). An experiment
	// that overruns is abandoned and reported as run.ErrDeadline.
	TaskTimeout time.Duration
	// StallTimeout arms the per-experiment watchdog (0 = disabled).
	StallTimeout time.Duration
	// OnError selects the failure policy (fail | skip | retry).
	OnError run.OnError
	// MaxRetries caps re-runs per experiment under run.Retry.
	MaxRetries int
	// CheckpointPath, when set, makes the run crash-safe: every completed
	// experiment's output block is snapshotted (atomic write) as it lands.
	CheckpointPath string
	// Resume loads CheckpointPath (if it exists) and replays its completed
	// slots instead of re-running them. Because every experiment is a pure
	// function of (Seed, experiment number), the resumed run's output is
	// byte-identical to an uninterrupted one.
	Resume bool
}

// Status is one experiment's outcome in a resilient run.
type Status struct {
	ID   string
	Wall time.Duration
	// Resumed marks a slot replayed from the checkpoint rather than run.
	Resumed bool
	// Err is nil for a completed experiment, else the *run.TaskError (or
	// cancellation) that stopped it.
	Err error
}

// fingerprint ties a checkpoint to the run configuration that wrote it.
func fingerprint(exps []Experiment, o Options) string {
	ids := make([]string, len(exps))
	for i, e := range exps {
		ids[i] = e.ID
	}
	return run.Fingerprint("experiments", o.Seed, o.Scale, strings.Join(ids, ","))
}

// expStream returns the xrand salt experiment i derives its streams from
// (the k of xrand.New(Seed, k)); recorded in checkpoint slots so snapshots
// are self-describing. The E1..E17 convention is salt = position + 1.
func expStream(i int) uint64 { return uint64(i) + 1 }

// RunResilient is RunAll under a control plane: experiments fan out over
// the pool and stream to w in order, but each one runs supervised (panic
// isolation, optional deadline and watchdog, optional retry), completed
// blocks are checkpointed crash-safely, and a canceled or crashed run can
// resume from its snapshot with byte-identical final output.
//
// Only experiment blocks are written to w — on an uninterrupted run with a
// zero-valued RunConfig the bytes are exactly RunAll's. Failures and
// partial progress are reported through the returned statuses: under
// run.FailFast the first failure cancels the rest and is returned; under
// run.Skip / run.Retry a failed experiment emits a one-line failure block
// and the rest complete, with the details in statuses. The returned error
// is non-nil only when the run as a whole failed or was canceled.
func RunResilient(ctx context.Context, w io.Writer, exps []Experiment, o Options, rc RunConfig) ([]Status, error) {
	ctrl := run.NewController(ctx, run.Config{
		TaskTimeout:  rc.TaskTimeout,
		StallTimeout: rc.StallTimeout,
		OnError:      rc.OnError,
		MaxRetries:   rc.MaxRetries,
	})
	defer ctrl.Cancel()
	return RunControlled(ctrl, w, exps, o, rc)
}

// RunControlled is RunResilient with a caller-owned controller, for CLIs
// that install signal handlers or whole-run deadlines on it first.
func RunControlled(ctrl *run.Controller, w io.Writer, exps []Experiment, o Options, rc RunConfig) ([]Status, error) {
	fp := fingerprint(exps, o)
	cp := run.NewCheckpoint("experiments", o.Seed, fp)
	if rc.CheckpointPath != "" && rc.Resume {
		loaded, err := run.LoadCheckpoint(rc.CheckpointPath)
		switch {
		case err == nil:
			if loaded.Fingerprint != fp {
				return nil, fmt.Errorf("experiments: checkpoint %s was written by a different run (fingerprint %s, want %s); refusing to resume",
					rc.CheckpointPath, loaded.Fingerprint, fp)
			}
			cp = loaded
		case os.IsNotExist(err):
			// First run of a -resume invocation: nothing to replay.
		default:
			return nil, err
		}
	}

	statuses := make([]Status, len(exps))
	completed := metrics.Default().Counter("experiments_completed")
	ready := make([]chan string, len(exps))
	for i := range ready {
		ready[i] = make(chan string, 1)
	}

	job := func(i int) error {
		e := exps[i]
		statuses[i].ID = e.ID
		banner := fmt.Sprintf("\n──── %s ────\n", e.Title)
		if slot, ok := cp.Done(e.ID); ok {
			run.TaskResumed()
			statuses[i].Wall = time.Duration(slot.WallNS)
			statuses[i].Resumed = true
			completed.Inc()
			ready[i] <- string(slot.Output)
			return nil
		}
		// The buffer and wall reading happen only on the success path, where
		// the task goroutine has finished; an abandoned (deadline/stall)
		// task keeps writing to variables nobody reads again.
		var block string
		var wall time.Duration
		err := ctrl.Do(e.ID, i, func(t *run.Task) error {
			var b strings.Builder
			b.WriteString(banner)
			start := time.Now()
			e.Run(&b, o)
			wall = time.Since(start)
			block = b.String()
			return nil
		})
		if err != nil {
			statuses[i].Err = err
			ready[i] <- fmt.Sprintf("%s<%s failed: %v>\n", banner, e.ID, err)
			if rc.OnError == run.FailFast {
				ctrl.CancelCause(err)
			}
			return err
		}
		statuses[i].Wall = wall
		metrics.Default().Timer("experiment_wall", "id", e.ID).Observe(wall)
		completed.Inc()
		if rc.CheckpointPath != "" {
			cp.Record(run.Slot{ID: e.ID, Stream: expStream(i), Output: []byte(block), WallNS: int64(wall)})
			if err := cp.Save(rc.CheckpointPath); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}
		ready[i] <- block
		return nil
	}

	// The fan-out runs on its own goroutine so the loop below can stream
	// completed blocks in order while later experiments still run. A block
	// is sent on ready[i] before the job returns, so once the fan-out has
	// drained, every block that will ever arrive is already buffered —
	// slots canceled before dispatch simply emit nothing.
	var errs []error
	fanDone := make(chan struct{})
	go func() {
		defer close(fanDone)
		errs = parallel.ForEachCtx(ctrl.Context(), rc.Workers, len(exps), job)
	}()
	for i := range ready {
		select {
		case s := <-ready[i]:
			io.WriteString(w, s)
		case <-fanDone:
			select {
			case s := <-ready[i]:
				io.WriteString(w, s)
			default:
			}
		}
	}
	<-fanDone

	for i := range statuses {
		if statuses[i].ID == "" {
			statuses[i].ID = exps[i].ID
		}
		if statuses[i].Err == nil && errs[i] != nil {
			statuses[i].Err = errs[i]
		}
	}
	// A final durable snapshot: per-completion saves make this a formality,
	// but it guarantees the on-disk state reflects everything that finished
	// even if an earlier save failed transiently.
	if rc.CheckpointPath != "" && cp.Len() > 0 {
		if err := cp.Save(rc.CheckpointPath); err != nil {
			return statuses, err
		}
	}

	if err := ctrl.Err(); err != nil && !errors.Is(err, run.ErrCanceled) {
		// Whole-run deadline.
		return statuses, err
	}
	if cause := ctrl.Err(); cause != nil {
		// Canceled: surface the first real task failure if one triggered a
		// fail-fast cancel, else the cancellation itself.
		for _, s := range statuses {
			if s.Err != nil && !errors.Is(s.Err, run.ErrCanceled) {
				return statuses, s.Err
			}
		}
		return statuses, cause
	}
	if rc.OnError == run.FailFast {
		for _, s := range statuses {
			if s.Err != nil {
				return statuses, s.Err
			}
		}
	}
	return statuses, nil
}

// Summarize renders a one-line progress summary ("14/17 complete (2
// resumed), 1 failed, 2 canceled") for CLI trailers.
func Summarize(statuses []Status) string {
	var done, resumed, failed, canceled int
	for _, s := range statuses {
		switch {
		case s.Err == nil:
			done++
			if s.Resumed {
				resumed++
			}
		case errors.Is(s.Err, run.ErrCanceled):
			canceled++
		default:
			failed++
		}
	}
	msg := fmt.Sprintf("%d/%d complete", done, len(statuses))
	if resumed > 0 {
		msg += fmt.Sprintf(" (%d resumed from checkpoint)", resumed)
	}
	if failed > 0 {
		msg += fmt.Sprintf(", %d failed", failed)
	}
	if canceled > 0 {
		msg += fmt.Sprintf(", %d canceled", canceled)
	}
	return msg
}
