package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/entangle"
	"repro/internal/games"
	"repro/internal/netsim"
	"repro/internal/parallel"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// E20 maps the latency-constrained advantage frontier: for each (decision
// deadline, fiber distance, source visibility) grid point, a pre-shared
// entanglement architecture races the best classical alternative. The
// quantum side must deliver pairs BEFORE requests arrive (fiber propagation
// + heralding = entangle.SourceConfig.DeliveryLatency) and measure within
// the deadline; the classical side either coordinates over a message round
// trip when the deadline affords one (perfect coordination, win rate 1.0)
// or plays the best local strategy (the game's classical value, 0.75).
//
// The frontier is where the quantum architecture's empirical win rate beats
// the best classical one: a low-deadline band that widens with distance —
// a classical RTT stops fitting the budget long before a stored pair does —
// until fiber loss starves the pool and storage decoherence erodes the
// delivered visibility. WriteFrontierCSV commits the full grid as an
// artifact; e20 prints the summary table.

// frontierDeadlines is the decision-deadline sweep.
func frontierDeadlines() []time.Duration {
	return []time.Duration{
		1 * time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond,
		10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
		100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
		1000 * time.Microsecond,
	}
}

// frontierDistancesM is the balancer-separation sweep, in meters of fiber.
func frontierDistancesM() []float64 {
	return []float64{1_000, 5_000, 10_000, 25_000, 50_000, 100_000}
}

// frontierVisibilities is the source-visibility sweep, bracketing the CHSH
// critical visibility 1/√2 ≈ 0.707.
func frontierVisibilities() []float64 {
	return []float64{0.98, 0.90, 0.80, 0.75, 0.65}
}

// FrontierRow is one grid point's outcome.
type FrontierRow struct {
	Deadline   time.Duration
	DistanceM  float64
	Visibility float64

	// DeliveryLatency is generation→usable for one pair (propagation +
	// heralding); ClassicalRTT is the classical coordination round trip over
	// the same fiber distance.
	DeliveryLatency time.Duration
	ClassicalRTT    time.Duration
	// DeliveredPairRate is the usable-pair supply after fiber loss.
	DeliveredPairRate float64

	// WinQuantum is the quantum architecture's empirical win rate (quantum
	// when a pair is available within the deadline, local classical
	// fallback otherwise); QuantumFraction is the share of rounds that
	// consumed a pair.
	WinQuantum      float64
	QuantumFraction float64
	// WinClassical is the best classical architecture's win rate and
	// ClassicalArch which architecture achieved it ("coordinated" when an
	// RTT fits the deadline, "local" otherwise).
	WinClassical  float64
	ClassicalArch string

	Advantage  float64
	Advantaged bool
}

// advantageThreshold separates noise from a real frontier crossing: ~3σ of
// the binomial noise on WinQuantum at the default round count, well under
// the ≥0.04 edge a healthy supply delivers at usable visibilities.
const advantageThreshold = 0.025

// frontierRows simulates the full grid. Each point runs on its own derived
// RNG stream indexed by grid position, so the rows are byte-identical at
// any worker count.
func frontierRows(o Options) []FrontierRow {
	deadlines, dists, viss := frontierDeadlines(), frontierDistancesM(), frontierVisibilities()
	game := games.NewColocationCHSH()
	// The optimal measurement geometry is deterministic for CHSH; solve it
	// once and share the read-only result across points.
	q := game.QuantumValue(xrand.New(o.Seed, 20))
	// 2500 rounds puts the binomial noise on WinQuantum near 0.009, under
	// the 0.01 advantage threshold — sub-critical visibilities must not
	// flicker into the advantaged set.
	rounds := o.n(2500)
	baseSeed := xrand.New(o.Seed, 2020).Uint64()
	n := len(deadlines) * len(dists) * len(viss)
	return parallel.Map(n, func(i int) FrontierRow {
		d := deadlines[i/(len(dists)*len(viss))]
		dist := dists[(i/len(viss))%len(dists)]
		vis := viss[i%len(viss)]
		return simulateFrontierPoint(d, dist, vis, game, q, rounds, xrand.Derive(baseSeed, uint64(i)))
	})
}

// simulateFrontierPoint runs one grid point: a pool fed by an SPDC source
// over dist meters of fiber serves Poisson request arrivals; each round
// waits (bounded by the deadline budget) for a stored pair, measures it at
// its decayed visibility, or falls back to the best local classical play.
func simulateFrontierPoint(deadline time.Duration, dist, vis float64,
	game *games.XORGame, q games.QuantumResult, rounds int, rng *xrand.RNG) FrontierRow {

	src := entangle.DefaultSource()
	src.FiberLengthM = dist
	src.BaseVisibility = vis
	src.HeraldLatency = 2 * time.Microsecond
	qnic := entangle.DefaultQNIC()

	row := FrontierRow{
		Deadline: deadline, DistanceM: dist, Visibility: vis,
		DeliveryLatency:   src.DeliveryLatency(),
		ClassicalRTT:      2 * src.PropagationDelay(),
		DeliveredPairRate: src.DeliveredPairRate(),
	}

	var engine netsim.Engine
	pool := entangle.NewPool(qnic, 64)
	svc := entangle.StartService(&engine, src, pool, rng.Split(1))
	arrivals := &workload.PoissonArrivals{Rate: 2e4}
	arrRng := rng.Split(2)
	playRng := rng.Split(3)
	classical := game.BestClassicalSampler()

	// Let the pool reach steady state before the first request: one storage
	// limit plus the delivery latency covers both fill and expiry dynamics.
	warmup := qnic.StorageLimit + src.DeliveryLatency()
	engine.RunUntil(warmup)

	budget := deadline - qnic.MeasureLatency
	const waitStep = 5 * time.Microsecond
	wins, quantum := 0, 0
	for i := 0; i < rounds; i++ {
		at := warmup + arrivals.Next(arrRng)
		engine.RunUntil(at)
		x, y := game.SampleInput(playRng)
		var a, b int
		played := false
		if budget >= 0 {
			// Bounded wait: poll the pool in waitStep increments while the
			// remaining budget still fits the measurement.
			for waited := time.Duration(0); ; waited += waitStep {
				if v, ok := pool.TryConsume(engine.Now()); ok {
					a, b = q.QuantumSampler(v).Sample(x, y, playRng)
					played = true
					break
				}
				if waited+waitStep > budget {
					break
				}
				engine.RunUntil(at + waited + waitStep)
			}
		}
		if played {
			quantum++
		} else {
			a, b = classical.Sample(x, y, playRng)
		}
		if game.Wins(x, y, a, b) {
			wins++
		}
	}
	svc.Stop()

	row.WinQuantum = float64(wins) / float64(rounds)
	row.QuantumFraction = float64(quantum) / float64(rounds)
	row.WinClassical, row.ClassicalArch = 0.75, "local"
	if row.ClassicalRTT <= deadline {
		row.WinClassical, row.ClassicalArch = 1.0, "coordinated"
	}
	row.Advantage = row.WinQuantum - row.WinClassical
	row.Advantaged = row.Advantage > advantageThreshold
	return row
}

// WriteFrontierCSV emits the full advantage-frontier grid as the committed
// CSV artifact. Every value is a pure function of (o.Seed, o.Scale), so the
// bytes are identical across runs, machines and worker counts.
func WriteFrontierCSV(w io.Writer, o Options) error {
	if _, err := fmt.Fprintln(w, "deadline_ns,distance_m,visibility,delivery_latency_ns,classical_rtt_ns,pair_rate,win_quantum,quantum_fraction,win_best_classical,best_classical_arch,advantage,advantaged"); err != nil {
		return err
	}
	for _, r := range frontierRows(o) {
		if _, err := fmt.Fprintf(w, "%d,%.0f,%.2f,%d,%d,%.6g,%.6f,%.4f,%.2f,%s,%.6f,%t\n",
			r.Deadline.Nanoseconds(), r.DistanceM, r.Visibility,
			r.DeliveryLatency.Nanoseconds(), r.ClassicalRTT.Nanoseconds(),
			r.DeliveredPairRate, r.WinQuantum, r.QuantumFraction,
			r.WinClassical, r.ClassicalArch, r.Advantage, r.Advantaged); err != nil {
			return err
		}
	}
	return nil
}

// e20 prints the frontier summary: for each distance × visibility, how many
// of the swept deadlines land in the quantum-advantaged band and the band's
// extent. The full grid behind it is the WriteFrontierCSV artifact.
func e20(w io.Writer, o Options) {
	rows := frontierRows(o)
	deadlines, dists, viss := frontierDeadlines(), frontierDistancesM(), frontierVisibilities()
	// Index rows by grid position (they arrive in deadline-major order).
	at := func(di, gi, vi int) FrontierRow {
		return rows[di*len(dists)*len(viss)+gi*len(viss)+vi]
	}
	fmt.Fprintf(w, "advantaged deadlines (of %d swept) and band extent, by distance × visibility\n", len(deadlines))
	header := "distance "
	for _, v := range viss {
		header += fmt.Sprintf("  v=%.2f         ", v)
	}
	fmt.Fprintln(w, header)
	total := 0
	for gi, dist := range dists {
		line := fmt.Sprintf("%5.0fkm ", dist/1000)
		for vi := range viss {
			count := 0
			var lo, hi time.Duration
			for di := range deadlines {
				if at(di, gi, vi).Advantaged {
					if count == 0 {
						lo = deadlines[di]
					}
					hi = deadlines[di]
					count++
				}
			}
			total += count
			if count == 0 {
				line += fmt.Sprintf("  %-15s", "0  —")
			} else {
				line += fmt.Sprintf("  %-15s", fmt.Sprintf("%d  [%v,%v]", count, lo, hi))
			}
		}
		fmt.Fprintln(w, line)
	}
	fmt.Fprintf(w, "advantaged points: %d / %d\n", total, len(rows))
	fmt.Fprintln(w, "(full grid: the FRONTIER_advantage.csv artifact, `make frontier`)")
}
