package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/games"
	"repro/internal/loadbalance"
	"repro/internal/loadtest"
	"repro/internal/serve"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// This file holds E19 — the scenario-diversity experiment — and the shared
// definitions of the two promoted examples/ scenarios (GPU kernel dispatch,
// serverless affinity routing). The examples/ binaries and E19 both build
// from these helpers, so "the example" and "the experiment row" are the
// same configuration by construction rather than by copy-paste.

// GPUSchedulerConfig is the promoted examples/gpu-scheduler scenario: 64
// dispatchers routing texture-sharing (type-C) and exclusive (type-E)
// kernels onto a pool of Streaming Multiprocessors. warmup/slots are caller
// supplied so the example can run its full 12000-slot table while E19 runs
// the scaled count.
func GPUSchedulerConfig(sms, warmup, slots int) loadbalance.Config {
	return loadbalance.Config{
		NumBalancers: 64,
		NumServers:   sms,
		Warmup:       warmup,
		Slots:        slots,
		Discipline:   loadbalance.BatchCFirst,
		Workload:     workload.Bernoulli{PC: 0.5},
		Seed:         7,
	}
}

// GPUSchedulerSMs is the SM-pool sweep the example tables, from comfortable
// headroom down past the Figure 4 knee.
func GPUSchedulerSMs() []int { return []int{100, 72, 64, 58, 53} }

// ServerlessAffinityNames returns the four function classes of the promoted
// examples/serverless-affinity scenario.
func ServerlessAffinityNames() []string {
	return []string{"thumbnailer", "transcoder", "ml-inference", "report-gen"}
}

// ServerlessAffinityGame builds the scenario's affinity graph as an XOR
// game: thumbnailer/transcoder share codec caches and report-gen reuses
// thumbnails (colocate edges); ML inference monopolizes the GPU and the
// transcoder starves report-gen of memory bandwidth (exclusive edges).
func ServerlessAffinityGame() *games.XORGame {
	const n = 4
	labels := make([][]games.EdgeLabel, n)
	for i := range labels {
		labels[i] = make([]games.EdgeLabel, n)
	}
	set := func(a, b int, l games.EdgeLabel) { labels[a][b], labels[b][a] = l, l }
	set(0, 1, games.Colocate)
	set(0, 2, games.Exclusive)
	set(1, 2, games.Exclusive)
	set(2, 3, games.Exclusive)
	set(0, 3, games.Colocate)
	set(1, 3, games.Exclusive)
	return games.GraphXORGame("serverless-affinity", n, labels)
}

// ServerlessAffinityWorkload is the matching arrival mix: equal-weight
// classes, with ML inference the only exclusive task type. Validated (the
// tables are same-length by construction) through the workload.Validator
// path when run via RunE.
func ServerlessAffinityWorkload() workload.MultiClass {
	return workload.MultiClass{
		Weights: []float64{1, 1, 1, 1},
		ClassTypes: []workload.TaskType{
			workload.TypeC, workload.TypeC, workload.TypeE, workload.TypeC,
		},
	}
}

// e19 is the scenario-diversity experiment: the queueing and serving
// results of E3–E6 re-examined under trace-shaped workloads (diurnal type
// mixes, bursty and cross-balancer-correlated phases), plus the two
// promoted examples/ scenarios run as first-class rows, plus the serving
// path itself under non-stationary arrival profiles.
func e19(w io.Writer, o Options) {
	// Part 1: N=100 at load ≈ 1.1 (the E6 regime) under four type-mix
	// processes. The quantum edge must survive non-stationarity: the pair
	// strategy never conditions on the mix, so modulation moves both
	// columns but should not erase the gap.
	warmup, slots := o.n(1000), o.n(4000)
	mixes := []struct {
		name string
		gen  workload.Generator
	}{
		{"stationary", workload.Bernoulli{PC: 0.5}},
		{"diurnal-mix", &workload.DiurnalMix{PC: 0.5, Amp: 0.35, PeriodSlots: 500}},
		{"bursty", workload.NewBursty(0.8, 0.2, 0.02, 100)},
		{"correlated-bursts", workload.NewCorrelatedBursts(0.8, 0.2, 0.02, 0.9, 100)},
	}
	fmt.Fprintln(w, "type mix            random queue  quantum queue  ratio  colocation")
	for i, m := range mixes {
		cfg := loadbalance.Config{
			NumBalancers: 100, NumServers: 91,
			Warmup: warmup, Slots: slots,
			Discipline: loadbalance.BatchCFirst,
			Workload:   m.gen,
			Seed:       o.Seed,
		}
		rr, err := loadbalance.RunE(cfg, loadbalance.RandomStrategy{})
		if err != nil {
			panic(err)
		}
		qs := loadbalance.NewQuantumPairedStrategy(0.95, xrand.New(o.Seed, uint64(1900+i)))
		rq, err := loadbalance.RunE(cfg, qs)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(w, "%-18s %10.2f  %12.2f   %.2f  %.4f\n",
			m.name, rr.QueueLen.Mean(), rq.QueueLen.Mean(),
			rr.QueueLen.Mean()/rq.QueueLen.Mean(), rq.Colocation.Rate())
	}

	// Part 2: the promoted GPU-scheduler scenario at the knee of its SM
	// sweep — the regime the example exists to showcase.
	fmt.Fprintln(w, "gpu-scheduler (64 dispatchers):")
	fmt.Fprintln(w, "  SMs  random delay  entangled delay  speedup")
	for _, sms := range []int{72, 58} {
		cfg := GPUSchedulerConfig(sms, warmup, slots)
		rr, err := loadbalance.RunE(cfg, loadbalance.RandomStrategy{})
		if err != nil {
			panic(err)
		}
		rq, err := loadbalance.RunE(cfg, loadbalance.NewQuantumPairedStrategy(0.95, xrand.New(7, 19)))
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(w, "  %-3d  %12.2f  %15.2f  %.2fx\n",
			sms, rr.Delay.Mean(), rq.Delay.Mean(), rr.Delay.Mean()/rq.Delay.Mean())
	}

	// Part 3: the promoted serverless-affinity scenario — game values plus
	// the queueing consequence of playing its optimal strategies under the
	// matching four-class mix.
	game := ServerlessAffinityGame()
	rng := xrand.New(o.Seed, 1919)
	c := game.ClassicalValue()
	q := game.QuantumValue(rng)
	fmt.Fprintf(w, "serverless-affinity: classical %.4f, quantum %.4f (gap %.4f)\n",
		c.Value, q.Value, q.Value-c.Value)
	saCfg := loadbalance.Config{
		NumBalancers: 100, NumServers: 91,
		Warmup: warmup, Slots: slots,
		Discipline: loadbalance.BatchSameClassC,
		Workload:   ServerlessAffinityWorkload(),
		Seed:       o.Seed,
	}
	sq := loadbalance.NewGraphPairedStrategy(game, 1.0, rng)
	sc := loadbalance.NewGraphClassicalStrategy(game)
	rq, err := loadbalance.RunE(saCfg, sq)
	if err != nil {
		panic(err)
	}
	rc, err := loadbalance.RunE(saCfg, sc)
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(w, "  mean queue: graph-classical %.2f | graph-quantum %.2f | preference %.4f vs %.4f\n",
		rc.QueueLen.Mean(), rq.QueueLen.Mean(),
		sc.ColocationStats().Rate(), sq.ColocationStats().Rate())

	// Part 4: the serving path under non-stationary arrivals — the virtual
	// load harness (byte-deterministic) across steady, diurnal, flash-crowd
	// and heavy-tailed-batch profiles. Durations scale with o.Scale like
	// every other count.
	window := time.Duration(o.n(400)) * time.Millisecond
	serving := []struct {
		name string
		cfg  loadtest.Config
	}{
		{"steady", loadtest.Config{}},
		{"diurnal", loadtest.Config{Rate: workload.DiurnalProfile(2000, 0.6, window/2)}},
		{"flash-crowd", loadtest.Config{Rate: workload.FlashProfile(1500, window/2, 6, window/16)}},
		{"heavy-tail", loadtest.Config{Scenarios: []loadtest.Scenario{
			{Name: "decide", Weight: 0.7, Batch: 1},
			{Name: "heavy", Weight: 0.3, HeavyTail: &loadtest.HeavyTailBatch{Shape: 1.2, Scale: 2, Max: 256}},
		}}},
	}
	fmt.Fprintln(w, "serving path (virtual):")
	fmt.Fprintln(w, "  profile      requests  decisions  win-rate  p99 latency")
	for i, s := range serving {
		cfg := s.cfg
		cfg.Seed = xrand.Derive(o.Seed, uint64(1950+i)).Uint64()
		cfg.Duration = window
		cfg.SessionTemplate = serve.SessionRequest{PairRate: 1e6, PoolCap: 512}
		res, err := loadtest.RunVirtual(cfg)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(w, "  %-11s %8d  %9d  %.4f    %s\n",
			s.name, res.Requests, res.Decisions, res.WinRate,
			time.Duration(res.Latency.P99NS))
	}
}
