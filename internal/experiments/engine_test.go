package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/run"
	"repro/internal/xrand"
)

// killAfter wraps the experiment list so that completing the experiment at
// slot `kill` cancels the controller — a deterministic stand-in for a
// mid-sweep SIGTERM or crash, landing after that slot's output is produced
// but (at low worker counts) before its successors run.
func killAfter(exps []Experiment, kill int, ctrl *run.Controller) []Experiment {
	out := make([]Experiment, len(exps))
	for i, e := range exps {
		i, e := i, e
		out[i] = Experiment{ID: e.ID, Title: e.Title, Run: func(w io.Writer, o Options) {
			e.Run(w, o)
			if i == kill {
				ctrl.Cancel()
			}
		}}
	}
	return out
}

// TestKillAndResumeByteIdentical is the acceptance test for checkpoint/
// resume: a sweep canceled at a randomized (seed-derived) point and resumed
// from its snapshot must emit byte-identical output to an uninterrupted
// run, at -workers=1 and -workers=8.
func TestKillAndResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("several full experiment passes")
	}
	o := tinyOpts()
	var reference bytes.Buffer
	if _, err := RunResilient(context.Background(), &reference, All(), o, RunConfig{Workers: 4}); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ckpt := filepath.Join(t.TempDir(), "ckpt.json")
			// Seed-derived kill point, different per worker count so the
			// suite covers several interruption sites.
			kill := xrand.New(o.Seed, uint64(workers)).IntN(len(All()) - 1)

			ctrl := run.NewController(context.Background(), run.Config{})
			var interrupted bytes.Buffer
			statuses, err := RunControlled(ctrl, &interrupted, killAfter(All(), kill, ctrl), o,
				RunConfig{Workers: workers, CheckpointPath: ckpt})
			if err == nil {
				t.Fatalf("kill at slot %d did not interrupt the run", kill)
			}
			if !errors.Is(err, run.ErrCanceled) {
				t.Fatalf("interrupted run error %v does not wrap ErrCanceled", err)
			}
			var done, canceled int
			for _, s := range statuses {
				if s.Err == nil {
					done++
				} else {
					canceled++
				}
			}
			if done == 0 || canceled == 0 {
				t.Fatalf("kill at slot %d: done=%d canceled=%d — want a genuine partial run", kill, done, canceled)
			}

			cp, err := run.LoadCheckpoint(ckpt)
			if err != nil {
				t.Fatalf("snapshot unreadable after interruption: %v", err)
			}
			if cp.Len() != done {
				t.Fatalf("snapshot holds %d slots, %d experiments completed", cp.Len(), done)
			}

			var resumed bytes.Buffer
			statuses, err = RunResilient(context.Background(), &resumed, All(), o,
				RunConfig{Workers: workers, CheckpointPath: ckpt, Resume: true})
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			var replayed int
			for _, s := range statuses {
				if s.Err != nil {
					t.Fatalf("resumed run failed %s: %v", s.ID, s.Err)
				}
				if s.Resumed {
					replayed++
				}
			}
			if replayed != done {
				t.Fatalf("resume replayed %d slots, checkpoint held %d", replayed, done)
			}
			if resumed.String() != reference.String() {
				t.Fatalf("resumed output differs from uninterrupted run (kill=%d):\n--- resumed ---\n%s\n--- reference ---\n%s",
					kill, resumed.String(), reference.String())
			}
		})
	}
}

// TestResumeCompletedRunReplaysEverything: resuming a checkpoint of a
// finished sweep runs zero experiments and still reproduces the bytes.
func TestResumeCompletedRunReplaysEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment pass")
	}
	o := tinyOpts()
	ckpt := filepath.Join(t.TempDir(), "ckpt.json")
	var first bytes.Buffer
	if _, err := RunResilient(context.Background(), &first, All(), o, RunConfig{Workers: 4, CheckpointPath: ckpt}); err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	statuses, err := RunResilient(context.Background(), &second, All(), o,
		RunConfig{Workers: 4, CheckpointPath: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range statuses {
		if !s.Resumed {
			t.Fatalf("%s re-ran despite a complete checkpoint", s.ID)
		}
	}
	if first.String() != second.String() {
		t.Fatal("replayed output differs from original")
	}
}

func TestResumeRefusesForeignCheckpoint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "ckpt.json")
	exps := []Experiment{{ID: "T1", Title: "T1: trivial", Run: func(w io.Writer, o Options) { fmt.Fprintln(w, "ok") }}}
	if _, err := RunResilient(context.Background(), io.Discard, exps, Options{Seed: 1, Scale: 1},
		RunConfig{CheckpointPath: ckpt}); err != nil {
		t.Fatal(err)
	}
	// Same checkpoint, different seed: the fingerprint must not match.
	_, err := RunResilient(context.Background(), io.Discard, exps, Options{Seed: 2, Scale: 1},
		RunConfig{CheckpointPath: ckpt, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "refusing to resume") {
		t.Fatalf("foreign checkpoint accepted: %v", err)
	}
}

// panicList is a tiny experiment list with one deterministic saboteur.
func panicList() []Experiment {
	mk := func(id string) Experiment {
		return Experiment{ID: id, Title: id + ": healthy", Run: func(w io.Writer, o Options) {
			fmt.Fprintf(w, "%s output for seed %d\n", id, o.Seed)
		}}
	}
	return []Experiment{
		mk("T1"), mk("T2"),
		{ID: "T3", Title: "T3: saboteur", Run: func(w io.Writer, o Options) { panic("injected fault") }},
		mk("T4"), mk("T5"),
	}
}

// TestPanickingExperimentIsIsolated is the acceptance test for panic
// containment: a panicking experiment no longer crashes the process — it
// is reported as a typed *run.TaskError, and with -on-error=skip the
// remaining experiments complete and stream in order.
func TestPanickingExperimentIsIsolated(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var out bytes.Buffer
		statuses, err := RunResilient(context.Background(), &out, panicList(), Options{Seed: 9, Scale: 1},
			RunConfig{Workers: workers, OnError: run.Skip})
		if err != nil {
			t.Fatalf("workers=%d: skip-policy run failed as a whole: %v", workers, err)
		}
		for _, s := range statuses {
			if s.ID == "T3" {
				var te *run.TaskError
				if !errors.As(s.Err, &te) || !errors.Is(s.Err, run.ErrPanicked) {
					t.Fatalf("workers=%d: saboteur error %v is not a typed panic", workers, s.Err)
				}
				if len(te.Stack) == 0 {
					t.Fatalf("workers=%d: panic stack lost", workers)
				}
				continue
			}
			if s.Err != nil {
				t.Fatalf("workers=%d: healthy %s failed: %v", workers, s.ID, s.Err)
			}
		}
		s := out.String()
		for _, id := range []string{"T1", "T2", "T4", "T5"} {
			if !strings.Contains(s, id+" output") {
				t.Fatalf("workers=%d: %s block missing after sibling panic:\n%s", workers, id, s)
			}
		}
		if !strings.Contains(s, "<T3 failed:") || !strings.Contains(s, "panicked") {
			t.Fatalf("workers=%d: failure block missing:\n%s", workers, s)
		}
	}
}

// TestPanicFailFastCancelsRemainder: under the default policy the first
// failure stops the sweep (but still without crashing the process) and
// surfaces the typed error.
func TestPanicFailFastCancelsRemainder(t *testing.T) {
	var out bytes.Buffer
	statuses, err := RunResilient(context.Background(), &out, panicList(), Options{Seed: 9, Scale: 1},
		RunConfig{Workers: 1, OnError: run.FailFast})
	if !errors.Is(err, run.ErrPanicked) {
		t.Fatalf("fail-fast error %v does not wrap ErrPanicked", err)
	}
	// With one worker the saboteur at slot 2 must prevent dispatch of the
	// later slots.
	for _, s := range statuses[3:] {
		if s.Err == nil {
			t.Fatalf("%s ran after a fail-fast cancellation", s.ID)
		}
		if !errors.Is(s.Err, run.ErrCanceled) {
			t.Fatalf("%s error %v, want cancellation", s.ID, s.Err)
		}
	}
}

// TestRetryPolicyHealsTransientFailure: a task that fails on its first
// attempt and succeeds on the second completes under -on-error=retry, and
// the retried attempt's bytes are what lands in the output.
func TestRetryPolicyHealsTransientFailure(t *testing.T) {
	attempts := 0
	exps := []Experiment{{ID: "T1", Title: "T1: flaky", Run: func(w io.Writer, o Options) {
		attempts++
		if attempts == 1 {
			panic("transient glitch")
		}
		fmt.Fprintln(w, "healed")
	}}}
	var out bytes.Buffer
	statuses, err := RunResilient(context.Background(), &out, exps, Options{Seed: 1, Scale: 1},
		RunConfig{Workers: 1, OnError: run.Retry, MaxRetries: 2})
	if err != nil {
		t.Fatalf("retry run failed: %v", err)
	}
	if statuses[0].Err != nil || attempts != 2 {
		t.Fatalf("attempts=%d err=%v", attempts, statuses[0].Err)
	}
	if !strings.Contains(out.String(), "healed") {
		t.Fatalf("retried output missing:\n%s", out.String())
	}
}

// TestRunResilientMatchesRunAll pins the refactor: with a zero-valued
// RunConfig the resilient engine's bytes are exactly RunAll's.
func TestRunResilientMatchesRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("two full experiment passes")
	}
	o := tinyOpts()
	var legacy, resilient bytes.Buffer
	RunAll(&legacy, o, 4)
	if _, err := RunResilient(context.Background(), &resilient, All(), o, RunConfig{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if legacy.String() != resilient.String() {
		t.Fatal("RunResilient output differs from RunAll")
	}
}
