// Package experiments holds the paper's experiments (E1–E20, E18 reserved) as
// self-contained, writer-directed jobs, plus the parallel runner that
// regenerates them all. cmd/repro is a thin CLI over RunAll; cmd/bench
// times the same jobs individually to track the performance trajectory.
//
// Every experiment derives all of its randomness from xrand.New(Seed, k)
// with a per-experiment constant k, writes only to the io.Writer it is
// handed, and shares no mutable state with its siblings — which is what
// lets RunAll fan the set out over a worker pool and still emit output
// byte-identical to a serial run.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/ecmp"
	"repro/internal/entangle"
	"repro/internal/faults"
	"repro/internal/games"
	"repro/internal/loadbalance"
	"repro/internal/qkd"
	"repro/internal/qsim"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Options parametrizes a full experiment run.
type Options struct {
	// Seed is the master seed; every experiment derives its streams from
	// (Seed, experiment-number).
	Seed uint64
	// Scale multiplies every round/slot/trial count. 1 is the reduced but
	// statistically meaningful default; cmd/repro -full uses 5; tests and
	// benchmarks use fractions.
	Scale float64
}

// n scales a base count, never below 1.
func (o Options) n(base int) int {
	s := o.Scale
	if s <= 0 {
		s = 1
	}
	v := int(math.Round(float64(base) * s))
	if v < 1 {
		v = 1
	}
	return v
}

// Experiment is one reproducible unit: a figure or table of the paper.
// Title is the full banner line (it includes the ID, matching the historical
// cmd/repro output byte-for-byte); ID alone is used by cmd/bench and tests.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, o Options)
}

// All returns the experiments in their presentation order. E18 is reserved
// by the serving-path load-test family (see EXPERIMENTS.md), which reports
// through cmd/bench artifacts rather than a repro block.
func All() []Experiment {
	return []Experiment{
		{"E1", "E1: CHSH values (§2)", e1},
		{"E2", "E2 / Figure 3: P(quantum advantage), random XOR games on K5", e2},
		{"E3", "E3 / Figure 4: mean queue length vs load, N=100", e3},
		{"E4", "E4 / Figure 2: decision latency vs quality", e4},
		{"E5", "E5 / §4.2: ECMP no quantum advantage", e5},
		{"E6", "E6: noise robustness (queue length at load 1.1)", e6},
		{"E7", "E7: entanglement supply vs demand", e7},
		{"E8", "E8: Mermin-GHZ 3-player game", e8},
		{"E9", "E9: supply-limited load balancing (E3 × E7)", e9},
		{"E10", "E10: multi-class XOR-game scheduling (E + two cache subtypes, same-class batching)", e10},
		{"E11", "E11: repeater chains (visibility compounding & rate crossover)", e11},
		{"E12", "E12: Bell certification (deployment acceptance test)", e12},
		{"E13", "E13: cache-level mechanism (LRU textures, 3 classes)", e13},
		{"E14", "E14: W-state leader election (a further primitive, per the conclusion)", e14},
		{"E15", "E15: noise-adaptive measurement (anisotropic channels)", e15},
		{"E16", "E16: E91 quantum key distribution (refs [24,45] on our substrate)", e16},
		{"E17", "E17: chaos — fault injection and graceful degradation", e17},
		{"E19", "E19: scenario diversity — non-stationary workloads and promoted examples", e19},
		{"E20", "E20: the latency-constrained advantage frontier (deadline × distance × visibility)", e20},
	}
}

// Timing is one experiment's measured wall time from a RunAll pass.
type Timing struct {
	ID   string
	Wall time.Duration
}

// RunAll regenerates every experiment, fanning them out over `workers`
// goroutines (<= 0 means the parallel package default) while emitting each
// experiment's output block to w in E1..E20 order as soon as it and all of
// its predecessors have finished. Output bytes are identical at any worker
// count.
//
// Each experiment's wall time is returned in E1..E20 order and recorded in
// the default metrics registry (experiment_wall{id=...} timers plus an
// experiments_completed counter), so a -metrics artifact written after the
// run carries the per-experiment breakdown.
//
// RunAll is the unsupervised entry point: it delegates to RunResilient
// with no deadlines, checkpointing or failure policy, and panics if an
// experiment fails (the historical contract). Callers needing
// cancellation, -on-error policies or checkpoint/resume use RunResilient.
func RunAll(w io.Writer, o Options, workers int) []Timing {
	statuses, err := RunResilient(context.Background(), w, All(), o, RunConfig{Workers: workers})
	if err != nil {
		panic(err)
	}
	timings := make([]Timing, len(statuses))
	for i, s := range statuses {
		timings[i] = Timing{ID: s.ID, Wall: s.Wall}
	}
	return timings
}

func e1(w io.Writer, o Options) {
	rng := xrand.New(o.Seed, 1)
	g := games.NewCHSH()
	c := g.ClassicalValue()
	q := g.QuantumValue(rng)
	bell := games.NewBellSampler(games.OptimalCHSHAngles(), 1.0, rng)
	fmt.Fprintf(w, "classical %.6f (paper 0.75) | quantum SDP %.6f | Born rule %.6f (paper cos²(π/8)=%.6f)\n",
		c.Value, q.Value, bell.ExactValue(g), math.Pow(math.Cos(math.Pi/8), 2))

	var p stats.Proportion
	s := q.QuantumSampler(1.0)
	rounds := o.n(100000)
	for i := 0; i < rounds; i++ {
		x, y := g.SampleInput(rng)
		a, b := s.Sample(x, y, rng)
		p.Add(g.Wins(x, y, a, b))
	}
	lo, hi := p.Wilson95()
	fmt.Fprintf(w, "sampled quantum win rate (n=%d): %.4f [%.4f, %.4f]\n", rounds, p.Rate(), lo, hi)
}

func e2(w io.Writer, o Options) {
	rng := xrand.New(o.Seed, 2)
	trials := o.n(150)
	fmt.Fprintln(w, "p_exclusive  P(advantage)")
	for _, p := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		rate := games.AdvantageProbability(5, p, trials, rng)
		fmt.Fprintf(w, "%.1f          %.3f\n", p, rate)
	}
}

func e3(w io.Writer, o Options) {
	base := loadbalance.Config{
		NumBalancers: 100,
		Warmup:       o.n(2000),
		Slots:        o.n(6000),
		Discipline:   loadbalance.BatchCFirst,
		Workload:     workload.Bernoulli{PC: 0.5},
		Seed:         o.Seed,
	}
	loads := []float64{0.7, 0.85, 0.95, 1.0, 1.05, 1.1, 1.2, 1.3}
	cls := loadbalance.SweepLoad(base, func() loadbalance.Strategy { return loadbalance.RandomStrategy{} }, loads)
	qnt := loadbalance.SweepLoad(base, func() loadbalance.Strategy {
		return loadbalance.NewQuantumPairedStrategy(1.0, xrand.New(o.Seed, 3))
	}, loads)
	fmt.Fprintln(w, "load   classical-random   quantum-chsh")
	for i, l := range loads {
		fmt.Fprintf(w, "%.2f   %12.2f     %12.2f\n", l, cls.Y[i], qnt.Y[i])
	}
	fmt.Fprintf(w, "knee@5: classical %.3f, quantum %.3f (theory: 1.0 vs ≤4/3)\n",
		cls.KneeX(5), qnt.KneeX(5))
}

func e4(w io.Writer, o Options) {
	cfg := core.DefaultTimingConfig()
	cfg.Rounds = o.n(5000)
	cfg.Seed = o.Seed
	fmt.Fprint(w, core.ParetoSummary(core.RunTiming(cfg)))
}

func e5(w io.Writer, o Options) {
	cfg := ecmp.Config{NumSwitches: 6, NumPaths: 2, ActiveK: 2, Rounds: o.n(50000), Seed: o.Seed}
	for _, s := range []ecmp.PathStrategy{
		ecmp.IndependentRandom{}, ecmp.SharedPermutation{},
		ecmp.PairwiseAntiCorrelated{Visibility: 1},
	} {
		r := ecmp.Run(cfg, s)
		fmt.Fprintf(w, "%-26s E[collisions]=%.4f\n", r.Strategy, r.Collisions.Mean())
	}
	fmt.Fprintf(w, "exact classical optimum %.4f | quantum search best %.4f (bound %.4f)\n",
		ecmp.ExactBestClassical(6, 2, 2),
		ecmp.QuantumSearchBestCollisions(6, 2, o.n(100), xrand.New(o.Seed, 5)),
		ecmp.PigeonholeLowerBound(6, 2, 2))
	rep := ecmp.StandardReductionDemo()
	fmt.Fprintf(w, "reduction demo: marginal shift %.1e, mixture error %.1e (both ≈ 0)\n",
		rep.MaxMarginalShift, rep.MixtureError)
}

func e6(w io.Writer, o Options) {
	base := loadbalance.Config{
		NumBalancers: 100, NumServers: 91,
		Warmup: o.n(2000), Slots: o.n(5000),
		Discipline: loadbalance.BatchCFirst,
		Workload:   workload.Bernoulli{PC: 0.5},
		Seed:       o.Seed,
	}
	fmt.Fprintln(w, "visibility  mean queue  colocation rate")
	for _, v := range []float64{1.0, 0.9, 0.8, 1 / math.Sqrt2} {
		s := loadbalance.NewQuantumPairedStrategy(v, xrand.New(o.Seed, 6))
		r := loadbalance.Run(base, s)
		fmt.Fprintf(w, "%.3f       %8.2f    %.4f\n", v, r.QueueLen.Mean(), r.Colocation.Rate())
	}
	r := loadbalance.Run(base, loadbalance.RandomStrategy{})
	fmt.Fprintf(w, "random      %8.2f    —\n", r.QueueLen.Mean())
}

func e7(w io.Writer, o Options) {
	base := core.DefaultTimingConfig()
	base.Rounds = o.n(4000)
	base.Seed = o.Seed
	fmt.Fprintln(w, "demand/supply  quantum-fraction  win-rate")
	for _, mult := range []float64{0.5, 1, 2, 4} {
		cfg := base
		cfg.RequestRate = base.Source.PairRate * mult
		for _, r := range core.RunTiming(cfg) {
			if r.Architecture == "quantum-pre-shared" {
				fmt.Fprintf(w, "%.1f            %.3f             %.4f\n", mult, r.QuantumFraction, r.WinRate.Rate())
			}
		}
	}
}

func e8(w io.Writer, o Options) {
	rng := xrand.New(o.Seed, 8)
	g := games.MerminGHZ()
	s := games.NewGHZSampler(3, rng)
	fmt.Fprintf(w, "classical %.4f (known 0.75) | GHZ strategy %.4f (known 1.0) | sampled %.4f\n",
		g.ClassicalValue(), s.ExactValue(g), g.EmpiricalValue(s, o.n(2000), rng))
}

func e9(w io.Writer, o Options) {
	cfg := loadbalance.Config{
		NumBalancers: 100, NumServers: 95,
		Warmup: o.n(1000), Slots: o.n(4000),
		Discipline: loadbalance.BatchCFirst,
		Workload:   workload.Bernoulli{PC: 0.5},
		Seed:       o.Seed,
	}
	demand := float64(cfg.NumBalancers/2) * 1000 // pair-rounds/s at 1ms slots
	fmt.Fprintln(w, "supply/demand  quantum-fraction  colocation  mean queue")
	for _, mult := range []float64{2, 1, 0.5, 0.25, 0} {
		var s loadbalance.Strategy
		var sl *loadbalance.SupplyLimitedStrategy
		if mult == 0 {
			sl = loadbalance.NewSupplyLimitedStrategy(entangle.EmptySupplier{}, time.Millisecond, xrand.New(o.Seed, 9))
		} else {
			sl = loadbalance.NewSupplyLimitedStrategy(
				loadbalance.NewRatedSupplier(demand*mult, 1.0, 64), time.Millisecond, xrand.New(o.Seed, 9))
		}
		s = sl
		r := loadbalance.Run(cfg, s)
		fmt.Fprintf(w, "%.2f           %.3f             %.4f      %.2f\n",
			mult, sl.QuantumFraction(), sl.ColocationStats().Rate(), r.QueueLen.Mean())
	}
}

func e10(w io.Writer, o Options) {
	// One exclusive class plus two caching subtypes that must not be mixed —
	// the paper's caveat case where dedicated-server hybrids fail. (The
	// uniform E,E,C,C structure has NO quantum gap — computing the gap
	// before provisioning pairs is part of the workflow.)
	kinds := []games.ClassKind{games.KindExclusive, games.KindCaching, games.KindCaching}
	weights := []float64{1, 1, 1}
	game := games.MultiClassColocationGame(kinds, weights)
	rng := xrand.New(o.Seed, 10)
	c := game.ClassicalValue()
	q := game.QuantumValue(rng)
	fmt.Fprintf(w, "game values: classical %.4f, quantum %.4f (gap %.4f)\n", c.Value, q.Value, q.Value-c.Value)

	cfg := loadbalance.Config{
		NumBalancers: 100, NumServers: 91,
		Warmup: o.n(1000), Slots: o.n(4000),
		Discipline: loadbalance.BatchSameClassC,
		Workload: workload.MultiClass{Weights: weights,
			ClassTypes: []workload.TaskType{workload.TypeE, workload.TypeC, workload.TypeC}},
		Seed: o.Seed,
	}
	qs := loadbalance.NewGraphPairedStrategy(game, 1.0, rng)
	cs := loadbalance.NewGraphClassicalStrategy(game)
	rq := loadbalance.Run(cfg, qs)
	rc := loadbalance.Run(cfg, cs)
	rr := loadbalance.Run(cfg, loadbalance.RandomStrategy{})
	fmt.Fprintf(w, "mean queue: random %.2f | graph-classical %.2f | graph-quantum %.2f\n",
		rr.QueueLen.Mean(), rc.QueueLen.Mean(), rq.QueueLen.Mean())
	fmt.Fprintf(w, "preference satisfaction: classical %.4f vs quantum %.4f\n",
		cs.ColocationStats().Rate(), qs.ColocationStats().Rate())
}

func e11(w io.Writer, o Options) {
	_, veff := entangle.SwapWernerPairs(0.95, 0.9)
	fmt.Fprintf(w, "swap law check: Werner(0.95)×Werner(0.90) → effective V %.5f (analytic 0.85500)\n", veff)
	src := entangle.DefaultSource()
	cross := entangle.CrossoverSegments(src, 300_000, 0.5, 16)
	fmt.Fprintf(w, "crossover at 300 km (0.2 dB/km, BSM 0.5): first winning chain has %d segments\n", cross)
	chain := entangle.RepeaterChain{Segments: 8, Source: src, BSMSuccess: 0.5}
	fmt.Fprintf(w, "8-segment chain end-to-end visibility: %.4f (critical for CHSH: %.4f)\n",
		chain.EndToEndVisibility(), 1/math.Sqrt2)
}

func e12(w io.Writer, o Options) {
	rng := xrand.New(o.Seed, 12)
	g := games.NewCHSH()
	q := g.QuantumValue(rng)
	rounds := o.n(10000)
	for _, dev := range []struct {
		name string
		s    games.JointSampler
	}{
		{"entangled(V=0.95)", q.QuantumSampler(0.95)},
		{"classical-impostor", g.BestClassicalSampler()},
		{"PR-box(nonphysical)", &games.PRBoxSampler{Game: g}},
	} {
		cert := games.CertifyCHSH(dev.s, rounds, rng)
		fmt.Fprintf(w, "%-22s S=%.4f ±%.4f  violates-classical=%v  within-tsirelson=%v\n",
			dev.name, cert.S, cert.SE, cert.ViolatesClassicalBound(3), cert.WithinTsirelson(3))
	}
	fmt.Fprintln(w, "hierarchy: classical ≤ 2 < quantum ≤ 2√2 < no-signaling ≤ 4 — all three tiers distinguished")
}

func e13(w io.Writer, o Options) {
	cfg := cachesim.Config{
		NumDispatchers: 24, NumServers: 42,
		NumTextures: 3, TextureWeights: []float64{1, 1, 1},
		CacheSlots: 2, HitCost: 1, MissCost: 3,
		Warmup: o.n(500), Ticks: o.n(6000),
		Seed: o.Seed,
	}
	kinds := []games.ClassKind{games.KindCaching, games.KindCaching, games.KindCaching}
	game := games.MultiClassColocationGame(kinds, cfg.TextureWeights)
	rng := xrand.New(o.Seed, 13)

	rr := cachesim.Run(cfg, loadbalance.RandomStrategy{})
	gc := loadbalance.NewGraphClassicalStrategy(game)
	rc := cachesim.Run(cfg, gc)
	gq := loadbalance.NewGraphPairedStrategy(game, 1.0, rng)
	rq := cachesim.Run(cfg, gq)

	fmt.Fprintln(w, "strategy          hit-rate  sojourn(ticks)")
	fmt.Fprintf(w, "random            %.4f    %.2f\n", rr.HitRate.Rate(), rr.Sojourn.Mean())
	fmt.Fprintf(w, "graph-classical   %.4f    %.2f\n", rc.HitRate.Rate(), rc.Sojourn.Mean())
	fmt.Fprintf(w, "graph-quantum     %.4f    %.2f\n", rq.HitRate.Rate(), rq.Sojourn.Mean())
	fmt.Fprintln(w, "texture-affinity routing warms LRU caches; entanglement satisfies more")
	fmt.Fprintln(w, "same-texture colocation preferences than any classical pairing can")
}

func e14(w io.Writer, o Options) {
	rng := xrand.New(o.Seed, 14)
	fmt.Fprintln(w, "n   classical P(exactly one)  quantum P  quantum fairness(TV)")
	for _, n := range []int{2, 3, 5, 8} {
		st := games.RunLeaderElection(n, o.n(5000), rng)
		fmt.Fprintf(w, "%d   %.4f (formula %.4f)   %.4f     %.4f\n",
			n, st.ClassicalSuccess, games.ClassicalLeaderElectionValue(n),
			st.QuantumSuccess, st.QuantumFairness)
	}
	fmt.Fprintln(w, "anonymous symmetric parties, zero communication: private coins cap at")
	fmt.Fprintln(w, "(1−1/n)^(n−1) → 1/e, while a shared W state elects exactly one leader,")
	fmt.Fprintln(w, "uniformly, every round — another coordination primitive beyond XOR games")
}

func e15(w io.Writer, o Options) {
	rng := xrand.New(o.Seed, 15)
	g := games.NewCHSH()
	fmt.Fprintln(w, "channel              fixed-angle value  re-optimized value  gain")
	for _, p := range []float64{0.3, 0.6, 0.9} {
		rho := qsim.DensityFromPure(qsim.Bell()).
			ApplyChannel(0, qsim.Dephasing(p)).
			ApplyChannel(1, qsim.Dephasing(p))
		fixed, adapted := games.AdaptiveGain(g, rho, games.OptimalCHSHAngles(), rng)
		fmt.Fprintf(w, "dephasing(p=%.1f)     %.4f             %.4f              %+.4f\n",
			p, fixed, adapted, adapted-fixed)
	}
	fixed, adapted := games.AdaptiveGain(g, qsim.Werner(0.85), games.OptimalCHSHAngles(), rng)
	fmt.Fprintf(w, "werner(V=0.85)       %.4f             %.4f              %+.4f  (isotropic: nothing to adapt to)\n",
		fixed, adapted, adapted-fixed)
	fmt.Fprintln(w, "dephasing kills X-correlations but spares Z: re-optimizing the bases for")
	fmt.Fprintln(w, "the certified channel recovers value the paper's fixed angles leave behind")
}

func e16(w io.Writer, o Options) {
	rounds := o.n(15000)
	fmt.Fprintln(w, "channel                 key-bits  QBER    S        verdict")
	for _, tc := range []struct {
		name string
		cfg  qkd.Config
	}{
		{"clean (V=1.00)", qkd.Config{Rounds: rounds, Visibility: 1.0, AbortS: 2, Seed: o.Seed}},
		{"noisy (V=0.90)", qkd.Config{Rounds: rounds, Visibility: 0.9, AbortS: 2, Seed: o.Seed}},
		{"intercept-resend Eve", qkd.Config{Rounds: rounds, Visibility: 1.0, Eve: qkd.StandardEve(), AbortS: 2, Seed: o.Seed}},
	} {
		res := qkd.Run(tc.cfg)
		verdict := "key accepted"
		if res.Aborted {
			verdict = "ABORTED"
		}
		fmt.Fprintf(w, "%-22s  %-8d  %.4f  %.4f   %s\n",
			tc.name, len(res.Key), res.QBER.Rate(), res.S, verdict)
	}
	fmt.Fprintln(w, "the CHSH test that powers the load balancer doubles as the security test:")
	fmt.Fprintln(w, "any eavesdropper breaks entanglement, S collapses to ≤ 2, the key is discarded")
}

func e17(w io.Writer, o Options) {
	// Part 1: a full chaos run through the engine-driven supply chain — the
	// fault injector replays one phase per fault kind against a resilient
	// session; the paired classical floor must hold in every phase.
	res, err := core.RunChaos(core.ChaosConfig{
		Game:    games.NewColocationCHSH(),
		Source:  entangle.DefaultSource(),
		QNIC:    entangle.DefaultQNIC(),
		PoolCap: 64,
		Chain:   &entangle.RepeaterChain{Segments: 4, Source: entangle.DefaultSource(), BSMSuccess: 0.5},
		Phases:  core.DefaultChaosPhases(o.n(1500)),
		Seed:    o.Seed,
	})
	if err != nil {
		panic(err)
	}
	fmt.Fprintln(w, "phase              fault              quantum  visibility  win-rate  classical  floor")
	for _, p := range res.Phases {
		floor := "held"
		if p.Wins < p.ClassicalWins {
			floor = "BROKEN"
		}
		vis := "-"
		if p.QuantumRounds > 0 {
			vis = fmt.Sprintf("%.4f", p.MeanVisibility)
		}
		fmt.Fprintf(w, "%-18s %-18s %.3f    %-10s  %.4f    %.4f     %s\n",
			p.Name, p.Fault, p.QuantumFraction(), vis, p.WinRate(), p.ClassicalRate(), floor)
	}
	st := res.Session
	fmt.Fprintf(w, "session: %d rounds, levels quantum/reopt/classical/random = %d/%d/%d/%d, retries %d\n",
		st.Rounds, st.LevelRounds[0], st.LevelRounds[1], st.LevelRounds[2], st.LevelRounds[3], st.Retries)
	fmt.Fprintf(w, "supply:  generated %d, fiber-lost %d, delivered %d, suppressed %d; pool expired %d, flushed %d\n",
		res.Service.Generated, res.Service.LostFiber, res.Service.Delivered,
		res.Service.Suppressed, res.Pool.Expired, res.Pool.Flushed)

	// Part 2: the same fault timeline pressed onto the queueing simulator —
	// an engine-less faults.Supplier thins a rated pair supply under a
	// scripted outage while the load balancer runs at load 1.05; the mean
	// queue tracks the fault phases but service never stops (the classical
	// fallback keeps answering).
	warmup, slots := o.n(1000), o.n(4000)
	third := time.Duration(slots/3) * time.Millisecond
	start := time.Duration(warmup) * time.Millisecond
	sched := faults.Schedule{Windows: []faults.Window{
		{Kind: faults.KindSourceOutage, Start: start + third, End: start + 2*third},
	}}
	demand := float64(100/2) * 1000
	sl := loadbalance.NewSupplyLimitedStrategy(
		faults.NewSupplier(loadbalance.NewRatedSupplier(demand*2, 1.0, 64), sched),
		time.Millisecond, xrand.New(o.Seed, 17))
	rec := &loadbalance.SlotSeries{}
	cfg := loadbalance.Config{
		NumBalancers: 100, NumServers: 91, // load ≈ 1.1: the E6 regime where strategy quality moves the queue
		Warmup: warmup, Slots: slots,
		Discipline: loadbalance.BatchCFirst,
		Workload:   workload.Bernoulli{PC: 0.5},
		Seed:       o.Seed,
		Recorder:   rec,
	}
	loadbalance.Run(cfg, sl)
	// Per-phase statistics from the recorder: the queue mean directly, the
	// colocation rate by differencing the cumulative tally at the phase
	// boundaries (pair-rounds per slot are constant, so the counts cancel).
	phase := func(lo, hi time.Duration) (coloc, queue float64) {
		var cumLo, cumHi, nLo, nHi float64
		var qSum, qN float64
		for i, s := range rec.Slots {
			if rec.Measured[i] != 1 {
				continue
			}
			at := time.Duration(s) * time.Millisecond
			if at < lo {
				cumLo, nLo = rec.ColocationRate[i], nLo+1
			}
			if at < hi {
				cumHi, nHi = rec.ColocationRate[i], nHi+1
			} else {
				break
			}
			if at >= lo {
				qSum += rec.QueueTotal[i] / float64(cfg.NumServers)
				qN++
			}
		}
		if nHi > nLo {
			coloc = (cumHi*nHi - cumLo*nLo) / (nHi - nLo)
		}
		if qN > 0 {
			queue = qSum / qN
		}
		return coloc, queue
	}
	end := time.Duration(warmup+slots) * time.Millisecond
	fmt.Fprintln(w, "queueing under the same outage (load ≈1.1, supply 2×):")
	fmt.Fprintln(w, "  phase    colocation  mean queue")
	for _, ph := range []struct {
		name   string
		lo, hi time.Duration
	}{
		{"before", start, start + third},
		{"outage", start + third, start + 2*third},
		{"after", start + 2*third, end},
	} {
		c, q := phase(ph.lo, ph.hi)
		fmt.Fprintf(w, "  %-7s  %.4f      %.2f\n", ph.name, c, q)
	}
	fmt.Fprintf(w, "  quantum fraction %.3f over the full run\n", sl.QuantumFraction())
	fmt.Fprintln(w, "degradation is graceful: colocation collapses to the classical 0.75 floor")
	fmt.Fprintln(w, "during the outage — never below it — and snaps back when supply returns")
}
