package experiments

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/parallel"
	"repro/internal/run"
)

// extractBlockFrom returns the output from an experiment's banner onward.
func extractBlockFrom(t *testing.T, s, banner string) string {
	t.Helper()
	i := strings.Index(s, banner)
	if i < 0 {
		t.Fatalf("banner %q missing from run output", banner)
	}
	return s[i:]
}

// TestE19E20WorkerInvariance: the two new experiment blocks must be
// byte-identical at -workers 1, 4 and 8 — E19 because its loadbalance and
// loadtest runs are already single-stream, E20 because every frontier grid
// point draws from its own derived stream regardless of which worker
// simulates it.
func TestE19E20WorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("three full experiment passes")
	}
	extract := func(workers int) (string, string) {
		var out bytes.Buffer
		RunAll(&out, tinyOpts(), workers)
		s := out.String()
		e19 := extractBlockFrom(t, s, "──── E19")
		return e19[:strings.Index(e19, "──── E20")], extractBlockFrom(t, s, "──── E20")
	}
	one19, one20 := extract(1)
	for _, workers := range []int{4, 8} {
		got19, got20 := extract(workers)
		if got19 != one19 {
			t.Fatalf("E19 output differs between -workers 1 and -workers %d:\n--- 1 ---\n%s\n--- %d ---\n%s",
				workers, one19, workers, got19)
		}
		if got20 != one20 {
			t.Fatalf("E20 output differs between -workers 1 and -workers %d:\n--- 1 ---\n%s\n--- %d ---\n%s",
				workers, one20, workers, got20)
		}
	}
	for _, want := range []string{"type mix", "gpu-scheduler", "serverless-affinity", "serving path"} {
		if !strings.Contains(one19, want) {
			t.Fatalf("E19 block missing its %q section:\n%s", want, one19)
		}
	}
	if !strings.Contains(one20, "advantaged points:") {
		t.Fatalf("E20 block missing the frontier summary:\n%s", one20)
	}
}

// TestFrontierCSVWorkerInvariance pins the committed-artifact contract:
// WriteFrontierCSV emits identical bytes at any worker-pool width.
func TestFrontierCSVWorkerInvariance(t *testing.T) {
	o := Options{Seed: 42, Scale: 0.02}
	write := func(workers int) string {
		defer parallel.SetDefaultWorkers(0)
		parallel.SetDefaultWorkers(workers)
		var out bytes.Buffer
		if err := WriteFrontierCSV(&out, o); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out.String()
	}
	one := write(1)
	if !strings.HasPrefix(one, "deadline_ns,distance_m,visibility,") {
		t.Fatalf("artifact missing its header:\n%.200s", one)
	}
	rows := len(frontierDeadlines()) * len(frontierDistancesM()) * len(frontierVisibilities())
	if got := strings.Count(one, "\n"); got != rows+1 {
		t.Fatalf("artifact has %d lines, want %d grid rows + header", got, rows+1)
	}
	for _, workers := range []int{4, 8} {
		if got := write(workers); got != one {
			t.Fatalf("frontier CSV differs between 1 and %d workers", workers)
		}
	}
}

// TestFrontierRowsPhysicalShape sanity-checks the simulation against the
// physics it encodes: no advantage below the critical visibility once
// decoherence is accounted for, no quantum play without a pool, and the
// classical architecture switching at the RTT boundary.
func TestFrontierRowsPhysicalShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the full frontier grid at artifact scale")
	}
	// Artifact scale: the binomial noise must sit below the advantage
	// threshold for the sub-critical assertion to be meaningful.
	rows := frontierRows(Options{Seed: 42, Scale: 1})
	for _, r := range rows {
		if r.ClassicalRTT <= r.Deadline && r.ClassicalArch != "coordinated" {
			t.Fatalf("RTT %v fits deadline %v but best classical is %q", r.ClassicalRTT, r.Deadline, r.ClassicalArch)
		}
		if r.ClassicalRTT > r.Deadline && r.WinClassical != 0.75 {
			t.Fatalf("RTT %v misses deadline %v but classical win %v isn't the local value", r.ClassicalRTT, r.Deadline, r.WinClassical)
		}
		if r.Visibility <= 0.65 && r.Advantaged {
			t.Fatalf("advantage claimed at sub-critical source visibility %.2f (deadline %v, %vm)", r.Visibility, r.Deadline, r.DistanceM)
		}
		if r.QuantumFraction == 0 && r.WinQuantum > 0.80 {
			t.Fatalf("win rate %.3f without any quantum rounds (deadline %v, %vm)", r.WinQuantum, r.Deadline, r.DistanceM)
		}
	}
}

// TestResumeAcrossE19E20 kills the sweep right before the two new slots and
// resumes: the snapshot must replay E1–E17 and regenerate E19/E20 into a
// byte-identical transcript.
func TestResumeAcrossE19E20(t *testing.T) {
	if testing.Short() {
		t.Skip("two full experiment passes")
	}
	o := tinyOpts()
	var reference bytes.Buffer
	if _, err := RunResilient(context.Background(), &reference, All(), o, RunConfig{Workers: 4}); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	ckpt := filepath.Join(t.TempDir(), "ckpt.json")
	kill := len(All()) - 3 // cancel once E17 lands, before E19/E20 complete
	ctrl := run.NewController(context.Background(), run.Config{})
	var interrupted bytes.Buffer
	if _, err := RunControlled(ctrl, &interrupted, killAfter(All(), kill, ctrl), o,
		RunConfig{Workers: 1, CheckpointPath: ckpt}); err == nil {
		t.Fatal("kill before E19/E20 did not interrupt the run")
	}

	var resumed bytes.Buffer
	statuses, err := RunResilient(context.Background(), &resumed, All(), o,
		RunConfig{Workers: 4, CheckpointPath: ckpt, Resume: true})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	for _, s := range statuses {
		if (s.ID == "E19" || s.ID == "E20") && s.Resumed {
			t.Fatalf("%s should have been regenerated on resume, not replayed", s.ID)
		}
	}
	if resumed.String() != reference.String() {
		t.Fatal("resumed output across the E19/E20 boundary differs from an uninterrupted run")
	}
}
