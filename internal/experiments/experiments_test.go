package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// tinyOpts keeps every experiment to a few milliseconds so the invariance
// test can afford two full E1–E20 passes.
func tinyOpts() Options { return Options{Seed: 42, Scale: 0.02} }

func TestRunAllWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("two full experiment passes")
	}
	var serial, fanned bytes.Buffer
	RunAll(&serial, tinyOpts(), 1)
	RunAll(&fanned, tinyOpts(), 8)
	if serial.String() != fanned.String() {
		t.Fatalf("output differs between -workers 1 and -workers 8:\n--- serial ---\n%s\n--- workers=8 ---\n%s",
			serial.String(), fanned.String())
	}
}

func TestRunAllEmitsEveryBannerInOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment pass")
	}
	var out bytes.Buffer
	RunAll(&out, tinyOpts(), 4)
	s := out.String()
	pos := -1
	for _, e := range All() {
		banner := "──── " + e.Title + " ────"
		i := strings.Index(s, banner)
		if i < 0 {
			t.Fatalf("banner for %s missing from output", e.ID)
		}
		if i < pos {
			t.Fatalf("banner for %s out of order", e.ID)
		}
		pos = i
	}
}

func TestOptionsScaleFloorsAtOne(t *testing.T) {
	o := Options{Scale: 0.001}
	if got := o.n(100); got != 1 {
		t.Fatalf("n(100) at scale 0.001 = %d, want 1", got)
	}
	if got := (Options{}).n(100); got != 100 {
		t.Fatalf("zero scale should behave as 1, got %d", got)
	}
	if got := (Options{Scale: 5}.n(100)); got != 500 {
		t.Fatalf("n(100) at scale 5 = %d, want 500", got)
	}
}

func TestAllHasNineteenUniqueIDs(t *testing.T) {
	exps := All()
	if len(exps) != 19 {
		t.Fatalf("len(All()) = %d, want 19", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil {
			t.Fatalf("%s has nil Run", e.ID)
		}
		if !strings.HasPrefix(e.Title, e.ID) {
			t.Fatalf("%s title %q does not lead with its ID", e.ID, e.Title)
		}
	}
}

// TestRunAllReturnsTimings: the observability contract of RunAll — one
// wall-time entry per experiment, in E1..E20 order, all positive, and the
// per-experiment timers land in the default metrics registry.
func TestRunAllReturnsTimings(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment pass")
	}
	var out bytes.Buffer
	timings := RunAll(&out, tinyOpts(), 4)
	exps := All()
	if len(timings) != len(exps) {
		t.Fatalf("%d timings for %d experiments", len(timings), len(exps))
	}
	for i, tm := range timings {
		if tm.ID != exps[i].ID {
			t.Fatalf("timing %d is %s, want %s", i, tm.ID, exps[i].ID)
		}
		if tm.Wall <= 0 {
			t.Fatalf("%s wall time %v", tm.ID, tm.Wall)
		}
	}
	if c, ok := metrics.Default().Get(metrics.Key("experiment_wall", "id", "E1") + "_count"); !ok || c < 1 {
		t.Fatalf("experiment_wall{id=E1} timer missing from registry (count %v)", c)
	}
}

// TestE17WorkerInvariance is the chaos-determinism acceptance test: the E17
// block extracted from full RunAll passes at 1, 4 and 8 workers must be
// byte-identical — fault injection adds no worker-count dependence.
func TestE17WorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("three full experiment passes")
	}
	extract := func(workers int) string {
		var out bytes.Buffer
		RunAll(&out, tinyOpts(), workers)
		s := out.String()
		i := strings.Index(s, "──── E17")
		if i < 0 {
			t.Fatalf("E17 banner missing at workers=%d", workers)
		}
		return s[i:]
	}
	one := extract(1)
	for _, workers := range []int{4, 8} {
		if got := extract(workers); got != one {
			t.Fatalf("E17 output differs between -workers 1 and -workers %d:\n--- 1 ---\n%s\n--- %d ---\n%s",
				workers, one, workers, got)
		}
	}
	// The classical-floor guarantee itself is asserted at realistic phase
	// lengths by core.TestRunChaosHoldsClassicalFloor; the 30-round phases
	// used here are too short for that check to be meaningful.
	if !strings.Contains(one, "phase") {
		t.Fatalf("E17 block missing the phase table:\n%s", one)
	}
}
