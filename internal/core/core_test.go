package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/entangle"
	"repro/internal/games"
	"repro/internal/xrand"
)

func TestNewSessionValidation(t *testing.T) {
	if _, err := NewSession(Config{}); err == nil {
		t.Fatal("expected error for missing game")
	}
	if _, err := NewSession(Config{Game: games.NewCHSH()}); err == nil {
		t.Fatal("expected error for missing supplier")
	}
	s, err := NewSession(Config{Game: games.NewCHSH(), Supplier: entangle.PerfectSupplier{Visibility: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.ClassicalValue()-0.75) > 1e-9 {
		t.Fatalf("classical value %v", s.ClassicalValue())
	}
	if math.Abs(s.QuantumValue()-0.8535533905932737) > 1e-6 {
		t.Fatalf("quantum value %v", s.QuantumValue())
	}
}

func TestCriticalVisibility(t *testing.T) {
	// CHSH: V* = (0.75 − 0.5)/(cos²(π/8) − 0.5) = 1/√2.
	v := CriticalVisibility(0.75, 0.8535533905932737)
	if math.Abs(v-1/math.Sqrt2) > 1e-9 {
		t.Fatalf("critical visibility %v, want 1/√2", v)
	}
	// No quantum advantage → always classical.
	if CriticalVisibility(0.8, 0.8) != 1 {
		t.Fatal("no-advantage game should return 1")
	}
}

func TestSessionQuantumWinRate(t *testing.T) {
	s, err := NewSession(Config{
		Game:     games.NewColocationCHSH(),
		Supplier: entangle.PerfectSupplier{Visibility: 1},
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.PlayReferee(200000, 0, time.Microsecond)
	if st.QuantumRounds != st.Rounds {
		t.Fatalf("perfect supplier should serve every round: %d/%d", st.QuantumRounds, st.Rounds)
	}
	if !st.Wins.Contains95(0.8535533905932737) {
		lo, hi := st.Wins.Wilson95()
		t.Fatalf("win rate %v [%v,%v] excludes cos²(π/8)", st.Wins.Rate(), lo, hi)
	}
}

func TestSessionFallbackWhenDry(t *testing.T) {
	s, err := NewSession(Config{
		Game:     games.NewColocationCHSH(),
		Supplier: entangle.EmptySupplier{},
		Seed:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.PlayReferee(100000, 0, time.Microsecond)
	if st.FallbackRounds != st.Rounds {
		t.Fatal("empty supplier must always fall back")
	}
	if !st.Wins.Contains95(0.75) {
		t.Fatalf("fallback win rate %v, want 0.75", st.Wins.Rate())
	}
}

func TestSessionRejectsSubCriticalVisibility(t *testing.T) {
	// Supplier offers pairs below the critical visibility: the session must
	// prefer its classical fallback (which wins 0.75 > the noisy quantum
	// rate).
	s, err := NewSession(Config{
		Game:     games.NewColocationCHSH(),
		Supplier: entangle.PerfectSupplier{Visibility: 0.6}, // < 1/√2
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.PlayReferee(100000, 0, time.Microsecond)
	if st.QuantumRounds != 0 {
		t.Fatalf("sub-critical pairs should be refused: %d quantum rounds", st.QuantumRounds)
	}
	if !st.Wins.Contains95(0.75) {
		t.Fatalf("win rate %v, want classical 0.75", st.Wins.Rate())
	}
}

func TestSessionLatencyAccounting(t *testing.T) {
	qnic := entangle.DefaultQNIC()
	s, err := NewSession(Config{
		Game:     games.NewCHSH(),
		Supplier: entangle.PerfectSupplier{Visibility: 1},
		QNIC:     qnic,
		Seed:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := s.Round(0, 0, 0)
	if d.Mode != ModeQuantum {
		t.Fatal("expected quantum round")
	}
	if d.Latency != qnic.MeasureLatency {
		t.Fatalf("latency %v, want %v", d.Latency, qnic.MeasureLatency)
	}
	if d.Mode.String() != "quantum" || ModeFallback.String() != "fallback" {
		t.Fatal("mode names wrong")
	}
}

func TestExpectedWinRate(t *testing.T) {
	s, _ := NewSession(Config{Game: games.NewCHSH(), Supplier: entangle.PerfectSupplier{Visibility: 1}})
	// All quantum at V=1: the quantum value.
	if math.Abs(s.ExpectedWinRate(1, 1)-s.QuantumValue()) > 1e-9 {
		t.Fatal("expected win rate at f=1,V=1 should be the quantum value")
	}
	// All fallback: the classical value.
	if math.Abs(s.ExpectedWinRate(0, 1)-s.ClassicalValue()) > 1e-9 {
		t.Fatal("expected win rate at f=0 should be the classical value")
	}
}

func TestRunTimingParetoFrontier(t *testing.T) {
	cfg := DefaultTimingConfig()
	cfg.Rounds = 4000
	rows := RunTiming(cfg)
	if len(rows) != 3 {
		t.Fatalf("want 3 architectures, got %d", len(rows))
	}
	var local, quantum, coord TimingResult
	for _, r := range rows {
		switch r.Architecture {
		case "local-classical":
			local = r
		case "quantum-pre-shared":
			quantum = r
		case "coordinated-classical":
			coord = r
		}
	}
	// Latency ordering: local ≈ 0 ≤ quantum (µs) ≪ coordinated (≥ RTT = 1ms).
	if local.Latency.Mean() != 0 {
		t.Fatalf("local latency %v", local.Latency.Mean())
	}
	if quantum.Latency.Mean() <= 0 || quantum.Latency.Mean() > 10e-6 {
		t.Fatalf("quantum latency %v s, want ~1µs", quantum.Latency.Mean())
	}
	if coord.Latency.Mean() < 1e-3 {
		t.Fatalf("coordinated latency %v s, want ≥ 1 ms RTT", coord.Latency.Mean())
	}
	// Win-rate ordering: local 0.75 < quantum < coordinated 1.0.
	if coord.WinRate.Rate() != 1 {
		t.Fatalf("coordinated win rate %v", coord.WinRate.Rate())
	}
	lo, _ := quantum.WinRate.Wilson95()
	if lo <= 0.75 {
		t.Fatalf("quantum win rate %v does not significantly beat local 0.75", quantum.WinRate.Rate())
	}
	if !local.WinRate.Contains95(0.75) {
		t.Fatalf("local win rate %v", local.WinRate.Rate())
	}
	// The pre-shared pool at 10⁵ pairs/s comfortably covers 10⁴ req/s.
	if quantum.QuantumFraction < 0.95 {
		t.Fatalf("quantum fraction %v, expected near-full coverage", quantum.QuantumFraction)
	}
	if ParetoSummary(rows) == "" {
		t.Fatal("empty summary")
	}
}

// TestRunTimingSupplyStarvation is E7: when demand outstrips the source,
// the quantum fraction collapses toward supply/demand and the win rate
// interpolates toward classical.
func TestRunTimingSupplyStarvation(t *testing.T) {
	cfg := DefaultTimingConfig()
	cfg.Rounds = 6000
	cfg.RequestRate = 4e5 // 4× the 10⁵ pair rate
	rows := RunTiming(cfg)
	var quantum TimingResult
	for _, r := range rows {
		if r.Architecture == "quantum-pre-shared" {
			quantum = r
		}
	}
	if quantum.QuantumFraction > 0.5 {
		t.Fatalf("quantum fraction %v under 4x starvation, want ≤ ~0.25-0.4", quantum.QuantumFraction)
	}
	// Win rate must sit strictly between classical and full quantum.
	r := quantum.WinRate.Rate()
	if r <= 0.74 || r >= 0.85 {
		t.Fatalf("starved win rate %v should interpolate between 0.75 and 0.854", r)
	}
}

func BenchmarkSessionRound(b *testing.B) {
	s, _ := NewSession(Config{
		Game:     games.NewCHSH(),
		Supplier: entangle.PerfectSupplier{Visibility: 1},
		Seed:     1,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Round(time.Duration(i), i&1, (i>>1)&1)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{NumNodes: 3, Game: games.NewCHSH(), Supplier: entangle.PerfectSupplier{Visibility: 1}}); err == nil {
		t.Fatal("odd node count should fail")
	}
	if _, err := NewCluster(ClusterConfig{NumNodes: 4}); err == nil {
		t.Fatal("missing game/supplier should fail")
	}
}

func TestClusterDecide(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Game:     games.NewColocationCHSH(),
		NumNodes: 8,
		Supplier: entangle.PerfectSupplier{Visibility: 1},
		Seed:     44,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(45, 1)
	game := games.NewColocationCHSH()
	const slots = 20000
	for slot := 0; slot < slots; slot++ {
		inputs := make([]int, 8)
		for i := range inputs {
			inputs[i] = rng.IntN(2)
		}
		out := c.Decide(time.Duration(slot)*time.Microsecond, inputs)
		if len(out) != 8 {
			t.Fatal("wrong decision count")
		}
		_ = game
	}
	st := c.Stats()
	if st.Rounds != slots*4 {
		t.Fatalf("rounds %d, want %d", st.Rounds, slots*4)
	}
	// Inputs were uniform, so the win rate should approach the quantum value.
	if !st.Wins.Contains95(0.8535533905932737) {
		lo, hi := st.Wins.Wilson95()
		t.Fatalf("cluster win rate %v [%v,%v]", st.Wins.Rate(), lo, hi)
	}
	if c.FairnessSpread() != 0 {
		t.Fatalf("perfect supply should be perfectly fair, spread %v", c.FairnessSpread())
	}
	if c.NumNodes() != 8 {
		t.Fatal("node count wrong")
	}
	if len(c.SessionStats()) != 4 {
		t.Fatal("session stats count wrong")
	}
}

func TestClusterSharedSupplyFairness(t *testing.T) {
	// A rated supply at half demand: sessions earlier in slot order get
	// first crack at the pool every slot. The fairness spread quantifies
	// the resulting starvation asymmetry — it must be substantial here,
	// documenting why production would rotate the service order.
	sup := &halfSupplier{}
	c, err := NewCluster(ClusterConfig{
		Game:     games.NewColocationCHSH(),
		NumNodes: 4,
		Supplier: sup,
		Seed:     46,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(47, 1)
	for slot := 0; slot < 5000; slot++ {
		inputs := []int{rng.IntN(2), rng.IntN(2), rng.IntN(2), rng.IntN(2)}
		c.Decide(time.Duration(slot)*time.Microsecond, inputs)
	}
	// One pair per slot for two sessions: session 0 always wins the race.
	if c.FairnessSpread() < 0.9 {
		t.Fatalf("expected near-total starvation of the second session, spread %v",
			c.FairnessSpread())
	}
	st := c.Stats()
	if f := float64(st.QuantumRounds) / float64(st.Rounds); math.Abs(f-0.5) > 0.01 {
		t.Fatalf("aggregate quantum fraction %v, want 0.5", f)
	}
}

// halfSupplier provides exactly one pair per distinct timestamp.
type halfSupplier struct {
	last time.Duration
	used bool
}

func (h *halfSupplier) TryConsume(now time.Duration) (float64, bool) {
	if now != h.last {
		h.last = now
		h.used = false
	}
	if h.used {
		return 0, false
	}
	h.used = true
	return 1, true
}

// TestBrownoutRoundSkipsSupplyChain: the load-driven brownout round plays
// the best-classical strategy without consuming pairs or probing the
// supply — a counting supplier must see zero consumption attempts while
// the win rate stays on the classical floor.
func TestBrownoutRoundSkipsSupplyChain(t *testing.T) {
	hc := HealthConfig{Window: 8}
	supply := &countingSupplier{vis: 1}
	s, err := NewSession(Config{
		Game:     games.NewColocationCHSH(),
		Supplier: supply,
		Seed:     9,
		Health:   &hc,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(9, 0xb0)
	for i := 0; i < 100000; i++ {
		x, y := s.cfg.Game.SampleInput(rng)
		d := s.BrownoutRound(x, y)
		if d.Mode != ModeFallback || d.Level != DegradeClassical {
			t.Fatalf("brownout round %d: mode %v level %v", i, d.Mode, d.Level)
		}
	}
	if supply.calls != 0 {
		t.Fatalf("brownout rounds consumed %d supply attempts, want 0", supply.calls)
	}
	st := s.Stats()
	if st.Rounds != 100000 || st.FallbackRounds != st.Rounds ||
		st.LevelRounds[DegradeClassical] != st.Rounds {
		t.Fatalf("stats: %+v", st)
	}
	if !st.Wins.Contains95(0.75) {
		t.Fatalf("brownout win rate %v, want classical 0.75", st.Wins.Rate())
	}
	// The health monitor saw nothing: no probes happened, so engaging
	// brownout is the serving layer's job, not a side effect here.
	if s.Health().Visibility() != 0 || s.Health().SupplyRate() != 0 {
		t.Fatal("brownout rounds fed the health monitor")
	}
}

// countingSupplier counts TryConsume calls and always offers a pair.
type countingSupplier struct {
	vis   float64
	calls int
}

func (c *countingSupplier) TryConsume(now time.Duration) (float64, bool) {
	c.calls++
	return c.vis, true
}
