package core

import (
	"fmt"
	"time"

	"repro/internal/entangle"
	"repro/internal/faults"
	"repro/internal/games"
	"repro/internal/netsim"
	"repro/internal/xrand"
)

// Chaos harness: a scripted end-to-end fault run through the full supply
// chain — engine-driven SPDC service filling a QNIC pool, a deterministic
// fault injector replaying a phase script against it, and a resilient
// session playing the game round by round. The run's headline claim is the
// graceful-degradation guarantee: in every phase, however hostile, the
// session wins at least as often as the best classical strategy would on
// the very same inputs (the paired classical floor), because every rung of
// the ladder at or below critical visibility plays exactly that strategy.

// ChaosPhase is one scripted segment of a chaos run: `Rounds` coordination
// rounds during which one fault kind (or none) is in force.
type ChaosPhase struct {
	Name   string
	Rounds int
	// Fault is the phase's fault kind; KindNone for nominal/recovery phases.
	Fault faults.Kind
	// Severity is the fault's kind-specific severity (see faults.Window).
	Severity float64
}

// ChaosConfig assembles a chaos run.
type ChaosConfig struct {
	// Game is the coordination objective. Required.
	Game *games.XORGame
	// Source is the SPDC source feeding the pool.
	Source entangle.SourceConfig
	// QNIC models pair storage and decoherence.
	QNIC entangle.QNICConfig
	// RequestRate is coordination rounds per second (uniform arrivals, so
	// round k falls at exactly k/RequestRate — phase boundaries align with
	// fault windows). Default 5e4.
	RequestRate float64
	// PoolCap bounds stored pairs (0 = unlimited).
	PoolCap int
	// Chain, when non-nil, gives BSM-failure phases repeater semantics.
	Chain *entangle.RepeaterChain
	// Phases is the fault script. Required (use DefaultChaosPhases).
	Phases []ChaosPhase
	// Health tunes the degradation ladder (nil = defaults).
	Health *HealthConfig
	// Retry bounds in-round waits for in-flight pairs. The zero value gets
	// a default of half the round step (a wait can never run past the next
	// round's arrival, keeping pool clocks monotone).
	Retry RetryPolicy
	// Seed drives every random stream in the run.
	Seed uint64
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.RequestRate == 0 {
		c.RequestRate = 5e4
	}
	if c.Health == nil {
		c.Health = &HealthConfig{}
	}
	return c
}

// step is the uniform inter-round interval.
func (c ChaosConfig) step() time.Duration {
	return time.Duration(float64(time.Second) / c.RequestRate)
}

// DefaultChaosPhases returns the E17 script: nominal warm-up, then one phase
// per fault kind with recovery windows between, then a long cool-down. base
// is the rounds-per-phase unit.
func DefaultChaosPhases(base int) []ChaosPhase {
	return []ChaosPhase{
		{Name: "nominal", Rounds: 2 * base, Fault: faults.KindNone},
		{Name: "source-outage", Rounds: base, Fault: faults.KindSourceOutage},
		{Name: "recovery-1", Rounds: base, Fault: faults.KindNone},
		{Name: "fiber-burst", Rounds: base, Fault: faults.KindFiberLossBurst, Severity: 0.02},
		{Name: "recovery-2", Rounds: base, Fault: faults.KindNone},
		{Name: "decoherence-spike", Rounds: base, Fault: faults.KindDecoherenceSpike, Severity: 0.12},
		{Name: "pool-flush", Rounds: base, Fault: faults.KindPoolFlush},
		{Name: "bsm-failure", Rounds: base, Fault: faults.KindBSMFailure, Severity: 0.2},
		{Name: "cooldown", Rounds: 2 * base, Fault: faults.KindNone},
	}
}

// Schedule converts the phase script into a fault timeline at the config's
// request rate.
func (c ChaosConfig) Schedule() faults.Schedule {
	step := c.step()
	var s faults.Schedule
	at := time.Duration(0)
	for _, p := range c.Phases {
		end := at + time.Duration(p.Rounds)*step
		switch p.Fault {
		case faults.KindNone:
		case faults.KindPoolFlush:
			s.Windows = append(s.Windows, faults.Window{Kind: p.Fault, Start: at, End: at})
		default:
			s.Windows = append(s.Windows, faults.Window{
				Kind: p.Fault, Start: at, End: end, Severity: p.Severity,
			})
		}
		at = end
	}
	return s
}

// ChaosPhaseResult summarizes one phase of the run.
type ChaosPhaseResult struct {
	Name     string
	Fault    faults.Kind
	Severity float64
	Rounds   int64
	// Wins is the session's game wins this phase; ClassicalWins is what the
	// best classical pair strategy scored on the SAME inputs. Wins ≥
	// ClassicalWins in every phase is the graceful-degradation guarantee.
	Wins          int64
	ClassicalWins int64
	QuantumRounds int64
	// MeanVisibility averages consumed pairs' visibility (0 if none).
	MeanVisibility float64
	// LevelRounds counts rounds per degradation rung within the phase.
	LevelRounds [NumLevels]int64
	Retries     int64
	Waited      time.Duration
}

// WinRate is the phase's measured win rate.
func (r ChaosPhaseResult) WinRate() float64 {
	if r.Rounds == 0 {
		return 0
	}
	return float64(r.Wins) / float64(r.Rounds)
}

// ClassicalRate is the paired classical strategy's win rate on the phase's
// inputs.
func (r ChaosPhaseResult) ClassicalRate() float64 {
	if r.Rounds == 0 {
		return 0
	}
	return float64(r.ClassicalWins) / float64(r.Rounds)
}

// QuantumFraction is the fraction of the phase's rounds played quantum.
func (r ChaosPhaseResult) QuantumFraction() float64 {
	if r.Rounds == 0 {
		return 0
	}
	return float64(r.QuantumRounds) / float64(r.Rounds)
}

// ChaosResult is the complete outcome of a chaos run.
type ChaosResult struct {
	Phases   []ChaosPhaseResult
	Session  Stats
	Service  entangle.ServiceStats
	Pool     entangle.PoolStats
	Injector faults.Stats
	Schedule faults.Schedule
	Step     time.Duration
	// FloorHeld reports the acceptance criterion: every phase's Wins ≥ that
	// phase's paired ClassicalWins.
	FloorHeld bool
}

// RunChaos executes the scripted fault run and returns per-phase results.
// Determinism: the service, session and input streams are xrand splits of
// cfg.Seed; faults are scripted engine events; rounds arrive on a uniform
// grid — the result is a pure function of cfg.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Game == nil {
		return nil, fmt.Errorf("core: ChaosConfig.Game is required")
	}
	if len(cfg.Phases) == 0 {
		return nil, fmt.Errorf("core: ChaosConfig.Phases is required")
	}
	if err := cfg.Source.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.QNIC.Validate(); err != nil {
		return nil, err
	}
	step := cfg.step()
	retry := cfg.Retry
	if retry.MaxWait == 0 {
		retry.MaxWait = step / 2
	}

	base := xrand.New(cfg.Seed, 0xc4a05)
	engine := &netsim.Engine{}
	pool := entangle.NewPool(cfg.QNIC, cfg.PoolCap)
	svc := entangle.StartService(engine, cfg.Source, pool, base.Split(1))

	hc := *cfg.Health
	if hc.BaseVisibility == 0 {
		hc.BaseVisibility = cfg.Source.BaseVisibility
	}
	sess, err := NewSession(Config{
		Game:     cfg.Game,
		Supplier: pool,
		QNIC:     cfg.QNIC,
		Seed:     cfg.Seed,
		Health:   &hc,
		Engine:   engine,
		Retry:    retry,
	})
	if err != nil {
		return nil, err
	}

	sched := cfg.Schedule()
	inj := faults.NewInjector(engine, sched, faults.Target{Service: svc, Pool: pool, Chain: cfg.Chain})
	inj.Arm()

	// The paired classical baseline: a deterministic strategy consuming no
	// randomness, replayed on the identical input sequence.
	classical := cfg.Game.BestClassicalSampler()
	inputRNG := base.Split(2)

	res := &ChaosResult{Schedule: sched, Step: step, FloorHeld: true}
	now := time.Duration(0)
	round := 0
	for _, p := range cfg.Phases {
		pr := ChaosPhaseResult{Name: p.Name, Fault: p.Fault, Severity: p.Severity, Rounds: int64(p.Rounds)}
		before := sess.Stats()
		var visSum float64
		for i := 0; i < p.Rounds; i++ {
			now = time.Duration(round) * step
			engine.RunUntil(now)
			x, y := cfg.Game.SampleInput(inputRNG)
			d := sess.Round(now, x, y)
			if d.Mode == ModeQuantum {
				visSum += d.Visibility
			}
			ca, cb := classical.Sample(x, y, nil)
			if cfg.Game.Wins(x, y, ca, cb) {
				pr.ClassicalWins++
			}
			round++
		}
		after := sess.Stats()
		pr.Wins = after.Wins.Successes() - before.Wins.Successes()
		pr.QuantumRounds = after.QuantumRounds - before.QuantumRounds
		pr.Retries = after.Retries - before.Retries
		pr.Waited = after.Waited - before.Waited
		for l := 0; l < NumLevels; l++ {
			pr.LevelRounds[l] = after.LevelRounds[l] - before.LevelRounds[l]
		}
		if pr.QuantumRounds > 0 {
			pr.MeanVisibility = visSum / float64(pr.QuantumRounds)
		}
		if pr.Wins < pr.ClassicalWins {
			res.FloorHeld = false
		}
		res.Phases = append(res.Phases, pr)
	}
	svc.Stop()

	res.Session = sess.Stats()
	res.Service = svc.Stats()
	res.Pool = pool.Stats()
	res.Injector = inj.Stats()
	return res, nil
}
