package core

import (
	"fmt"
	"time"

	"repro/internal/entangle"
	"repro/internal/games"
	"repro/internal/xrand"
)

// Cluster manages coordination for a whole fleet: N nodes are paired into
// N/2 sessions that share one entanglement supply (the central source of
// Figure 1 feeds every QNIC). Per decision slot the cluster takes every
// node's local input and returns every node's decision — the multi-balancer
// view the load-balancing experiments need, built on the same Session
// machinery.
type Cluster struct {
	game     *games.XORGame
	sessions []*Session
	// pairOf[i] = (session index, side) for node i.
	numNodes int
}

// ClusterConfig assembles a Cluster.
type ClusterConfig struct {
	// Game is the per-pair coordination objective.
	Game *games.XORGame
	// NumNodes is the fleet size; must be even (pair the odd node with a
	// classical-only shim upstream if needed).
	NumNodes int
	// Supplier is shared by every session: pairs are handed out first come,
	// first served within a slot.
	Supplier entangle.Supplier
	QNIC     entangle.QNICConfig
	Seed     uint64
}

// NewCluster builds the fleet: node 2k pairs with node 2k+1.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.NumNodes < 2 || cfg.NumNodes%2 != 0 {
		return nil, fmt.Errorf("core: cluster needs an even node count ≥ 2, got %d", cfg.NumNodes)
	}
	if cfg.Game == nil || cfg.Supplier == nil {
		return nil, fmt.Errorf("core: cluster needs a game and a supplier")
	}
	c := &Cluster{game: cfg.Game, numNodes: cfg.NumNodes}
	// Solve the game once; clone per-session samplers with split seeds.
	base := xrand.New(cfg.Seed, 0xc1)
	for k := 0; k < cfg.NumNodes/2; k++ {
		s, err := NewSession(Config{
			Game:     cfg.Game,
			Supplier: cfg.Supplier,
			QNIC:     cfg.QNIC,
			Seed:     base.Uint64(),
		})
		if err != nil {
			return nil, err
		}
		c.sessions = append(c.sessions, s)
	}
	return c, nil
}

// NumNodes returns the fleet size.
func (c *Cluster) NumNodes() int { return c.numNodes }

// Decide coordinates one slot: inputs[i] is node i's local input; the
// returned slice holds node i's decision bit. Pairs are (0,1), (2,3), ….
func (c *Cluster) Decide(now time.Duration, inputs []int) []int {
	if len(inputs) != c.numNodes {
		panic(fmt.Sprintf("core: cluster got %d inputs for %d nodes", len(inputs), c.numNodes))
	}
	out := make([]int, c.numNodes)
	for k, s := range c.sessions {
		d := s.Round(now, inputs[2*k], inputs[2*k+1])
		out[2*k] = d.A
		out[2*k+1] = d.B
	}
	return out
}

// Stats aggregates all sessions' statistics.
func (c *Cluster) Stats() Stats {
	var agg Stats
	for _, s := range c.sessions {
		st := s.Stats()
		agg.Rounds += st.Rounds
		agg.QuantumRounds += st.QuantumRounds
		agg.FallbackRounds += st.FallbackRounds
		agg.Wins.AddBatch(st.Wins.Successes(), st.Wins.Trials())
		agg.Visibility.Merge(&st.Visibility)
	}
	return agg
}

// SessionStats exposes per-pair statistics for fairness inspection: with a
// shared supply, early sessions in the slot order could starve later ones;
// the test suite checks the spread.
func (c *Cluster) SessionStats() []Stats {
	out := make([]Stats, len(c.sessions))
	for i, s := range c.sessions {
		out[i] = s.Stats()
	}
	return out
}

// FairnessSpread returns the max−min quantum-round fraction across
// sessions — 0 is perfectly fair.
func (c *Cluster) FairnessSpread() float64 {
	lo, hi := 1.0, 0.0
	for _, s := range c.sessions {
		st := s.Stats()
		if st.Rounds == 0 {
			continue
		}
		f := float64(st.QuantumRounds) / float64(st.Rounds)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}
