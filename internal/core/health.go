package core

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// Graceful degradation: when the entanglement supply chain falters — the
// source drops out, fiber loss spikes, QNIC coherence collapses — a session
// must not fall off a cliff. It steps down a ladder of strategies, each rung
// cheaper and more robust than the last, and climbs back up only once the
// supply has demonstrably recovered:
//
//	DegradeNone        → play the noiseless-optimal quantum angles
//	DegradeReoptimize  → re-optimize measurements for the measured visibility
//	DegradeClassical   → best deterministic classical pair strategy
//	DegradeRandom      → independent uniform answers (supply monitor dead)
//
// The ladder's load-bearing threshold is the CHSH-critical visibility
// V* = 1/√2: above it quantum play beats the classical floor, below it the
// classical fallback is strictly better. Transitions are hysteretic —
// degrading is immediate, recovering requires clearing the threshold by a
// margin — so a supply hovering at V* doesn't thrash between strategies.

// DegradeLevel is a rung of the degradation ladder. Higher is worse.
type DegradeLevel int

const (
	// DegradeNone: healthy supply; play the optimal quantum strategy.
	DegradeNone DegradeLevel = iota
	// DegradeReoptimize: visibility sagging but still above critical;
	// re-optimize the measurement operators for the measured noise.
	DegradeReoptimize
	// DegradeClassical: visibility below critical or supply rate too low;
	// play the best classical pair strategy (the 0.75 floor for CHSH).
	DegradeClassical
	// DegradeRandom: no usable health signal at all; answer uniformly at
	// random. Only reachable by Force — the monitor itself never chooses
	// to do worse than classical.
	DegradeRandom

	numLevels
)

// NumLevels is the number of ladder rungs.
const NumLevels = int(numLevels)

// String names the level.
func (l DegradeLevel) String() string {
	switch l {
	case DegradeNone:
		return "quantum"
	case DegradeReoptimize:
		return "reoptimized"
	case DegradeClassical:
		return "classical"
	case DegradeRandom:
		return "random"
	}
	return fmt.Sprintf("DegradeLevel(%d)", int(l))
}

// HealthConfig tunes the session's health monitor. The zero value is usable:
// withDefaults fills every field.
type HealthConfig struct {
	// Window is the number of recent rounds over which visibility and
	// supply rate are averaged. Default 64.
	Window int
	// ReoptMargin: degrade from None to Reoptimize when rolling visibility
	// falls below (1 − ReoptMargin) of the supplier's base visibility —
	// i.e. a relative sag — while still above critical. Default 0.05.
	ReoptMargin float64
	// RecoverMargin is the hysteresis band: to climb a rung, the rolling
	// visibility must clear that rung's threshold by this margin.
	// Default 0.02.
	RecoverMargin float64
	// MinSupplyRate is the minimum rolling fraction of rounds with a pair
	// available below which the session degrades to classical regardless
	// of visibility (paying see-saw re-optimization for 1 round in 20 is
	// pure overhead). Default 0.05.
	MinSupplyRate float64
	// ProbeEvery: while degraded to classical, still attempt to consume a
	// pair every ProbeEvery-th round so the monitor can observe recovery.
	// Default 8.
	ProbeEvery int
	// BaseVisibility is the supply's nominal (healthy) visibility, used as
	// the DegradeNone reference. Default 1.
	BaseVisibility float64
	// MetricsName, when non-empty, labels session gauges in the default
	// metrics registry (session_visibility{session=...} etc.).
	MetricsName string
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.ReoptMargin == 0 {
		c.ReoptMargin = 0.05
	}
	if c.RecoverMargin == 0 {
		c.RecoverMargin = 0.02
	}
	if c.MinSupplyRate == 0 {
		c.MinSupplyRate = 0.05
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 8
	}
	if c.BaseVisibility == 0 {
		c.BaseVisibility = 1
	}
	return c
}

// RetryPolicy bounds how long a round may wait for an in-flight pair before
// falling back. Zero value = never wait.
type RetryPolicy struct {
	// MaxWait is the total simulated-time budget a round may spend waiting
	// for the pool to fill before giving up.
	MaxWait time.Duration
	// Backoff is the first wait step; each subsequent step doubles. Default
	// (when MaxWait > 0): MaxWait/8.
	Backoff time.Duration
}

func (r RetryPolicy) withDefaults() RetryPolicy {
	if r.MaxWait > 0 && r.Backoff <= 0 {
		r.Backoff = r.MaxWait / 8
		if r.Backoff <= 0 {
			r.Backoff = 1
		}
	}
	return r
}

// HealthMonitor tracks rolling delivered visibility and supply rate and maps
// them onto the degradation ladder with hysteresis. It is pure bookkeeping:
// it consumes no randomness and never touches the engine.
type HealthMonitor struct {
	cfg    HealthConfig
	vis    *stats.Rolling // visibility of delivered pairs
	supply *stats.Rolling // 1 if a pair was available this attempt, else 0

	level  DegradeLevel
	forced bool
	// brownout is the load-driven rung: while set, the effective level is
	// clamped to at least DegradeClassical regardless of what the
	// visibility ladder says. It composes with (never replaces) the
	// visibility-driven level — Level() reports the max of the two — so
	// an overloaded session with a dead supply still reads as whatever
	// the ladder chose, and a healthy one reads classical until the load
	// drains.
	brownout bool

	critVisibility float64

	transitions int64

	mVis    *metrics.Gauge
	mSupply *metrics.Gauge
	mLevel  *metrics.Gauge
	mTrans  *metrics.Counter
}

// NewHealthMonitor builds a monitor for a session whose quantum-vs-classical
// break-even sits at critVisibility.
func NewHealthMonitor(cfg HealthConfig, critVisibility float64) *HealthMonitor {
	cfg = cfg.withDefaults()
	h := &HealthMonitor{
		cfg:            cfg,
		vis:            stats.NewRolling(cfg.Window),
		supply:         stats.NewRolling(cfg.Window),
		critVisibility: critVisibility,
	}
	if cfg.MetricsName != "" {
		reg := metrics.Default()
		h.mVis = reg.Gauge(metrics.Key("session_visibility", "session", cfg.MetricsName))
		h.mSupply = reg.Gauge(metrics.Key("session_supply_rate", "session", cfg.MetricsName))
		h.mLevel = reg.Gauge(metrics.Key("session_degrade_level", "session", cfg.MetricsName))
		h.mTrans = reg.Counter(metrics.Key("session_level_transitions_total", "session", cfg.MetricsName))
	}
	return h
}

// ObserveAttempt records one consumption attempt: whether a pair was
// available, and (if so) its delivered visibility. It then re-evaluates the
// ladder and returns the current level.
func (h *HealthMonitor) ObserveAttempt(available bool, visibility float64) DegradeLevel {
	if available {
		h.supply.Add(1)
		h.vis.Add(visibility)
	} else {
		h.supply.Add(0)
	}
	h.evaluate()
	h.export()
	return h.Level()
}

// targetLevel maps the rolling signals to a rung, requiring each healthy
// threshold to be cleared by `margin` (0 for degrading, RecoverMargin for
// recovering — the hysteresis asymmetry).
func (h *HealthMonitor) targetLevel(margin float64) DegradeLevel {
	// No delivered pairs observed at all: without a visibility signal the
	// only safe rung is classical.
	if h.vis.Count() == 0 {
		return DegradeClassical
	}
	v := h.vis.Mean()
	if h.supply.Mean() < h.cfg.MinSupplyRate+margin {
		return DegradeClassical
	}
	if v <= h.critVisibility+margin {
		return DegradeClassical
	}
	if v < (1-h.cfg.ReoptMargin)*h.cfg.BaseVisibility-margin {
		return DegradeReoptimize
	}
	return DegradeNone
}

// evaluate applies the hysteresis rule: degrade immediately, recover only
// when the margin-tightened target is strictly better than the current rung.
func (h *HealthMonitor) evaluate() {
	if h.forced {
		return
	}
	raw := h.targetLevel(0)
	if raw > h.level {
		h.setLevel(raw)
		return
	}
	if rec := h.targetLevel(h.cfg.RecoverMargin); rec < h.level {
		h.setLevel(rec)
	}
}

func (h *HealthMonitor) setLevel(l DegradeLevel) {
	if l == h.level {
		return
	}
	h.level = l
	h.transitions++
	if h.mTrans != nil {
		h.mTrans.Inc()
	}
}

func (h *HealthMonitor) export() {
	if h.mVis == nil {
		return
	}
	h.mVis.Set(h.vis.Mean())
	h.mSupply.Set(h.supply.Mean())
	h.mLevel.Set(float64(h.Level()))
}

// Level returns the current effective ladder rung: the visibility-driven
// rung, clamped to at least DegradeClassical while brownout is engaged.
func (h *HealthMonitor) Level() DegradeLevel {
	if h.brownout && h.level < DegradeClassical {
		return DegradeClassical
	}
	return h.level
}

// SetBrownout engages or releases the load-driven brownout rung. It is a
// no-op when the flag is unchanged; when the flip changes the effective
// level, it counts as a ladder transition like any other.
func (h *HealthMonitor) SetBrownout(on bool) {
	if h.brownout == on {
		return
	}
	before := h.Level()
	h.brownout = on
	if h.Level() != before {
		h.transitions++
		if h.mTrans != nil {
			h.mTrans.Inc()
		}
	}
	h.export()
}

// Brownout reports whether the load-driven brownout rung is engaged.
func (h *HealthMonitor) Brownout() bool { return h.brownout }

// Visibility returns the rolling mean delivered visibility.
func (h *HealthMonitor) Visibility() float64 { return h.vis.Mean() }

// SupplyRate returns the rolling fraction of attempts that found a pair.
func (h *HealthMonitor) SupplyRate() float64 { return h.supply.Mean() }

// Transitions returns how many level changes have occurred.
func (h *HealthMonitor) Transitions() int64 { return h.transitions }

// ShouldProbe reports whether a classical-degraded session should still
// attempt consumption this round (round counter kept by the caller) so the
// monitor can see the supply recover.
func (h *HealthMonitor) ShouldProbe(round int64) bool {
	if h.Level() < DegradeClassical {
		return true
	}
	return round%int64(h.cfg.ProbeEvery) == 0
}

// Force pins the monitor to a level, disabling automatic transitions
// (operator override, or DegradeRandom for a dead monitor). Force(-1)
// releases the pin.
func (h *HealthMonitor) Force(l DegradeLevel) {
	if l < 0 {
		h.forced = false
		h.evaluate()
		return
	}
	h.forced = true
	h.setLevel(l)
	h.export()
}
