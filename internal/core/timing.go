package core

import (
	"fmt"
	"time"

	"repro/internal/entangle"
	"repro/internal/games"
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// This file is the Figure 2 experiment: with qubits pre-shared, a server
// decides the instant an input arrives; with classical coordination the
// decision waits for a network round trip. The output is the Pareto
// frontier the paper says quantum correlations expand:
//
//	architecture          decision latency      win rate
//	local classical       ~0                    classical value (0.75)
//	quantum pre-shared    QNIC measure (~1µs)   up to cos²(π/8) (0.854)
//	coordinated classical RTT (ms-scale)        1.0
//
// The quantum point strictly dominates "local classical" and is unreachable
// by any classical scheme at sub-RTT latency.

// TimingConfig parametrizes the experiment.
type TimingConfig struct {
	// DistanceM separates the two servers (fiber meters). Figure 2's story
	// needs this to be large enough that the RTT dwarfs local processing.
	DistanceM float64
	// RequestRate is the Poisson rate (per second) at which coordination
	// rounds arrive.
	RequestRate float64
	// Rounds is how many coordination rounds to simulate.
	Rounds int
	// Source and QNIC model the entanglement substrate.
	Source entangle.SourceConfig
	QNIC   entangle.QNICConfig
	Seed   uint64
}

// DefaultTimingConfig is the Figure 2 setting: servers 100 km apart
// (0.5 ms one-way), 10k requests/s, a default SPDC source.
func DefaultTimingConfig() TimingConfig {
	return TimingConfig{
		DistanceM:   100_000,
		RequestRate: 10_000,
		Rounds:      20_000,
		Source:      entangle.DefaultSource(),
		QNIC:        entangle.DefaultQNIC(),
		Seed:        1,
	}
}

// TimingResult is one architecture's row.
type TimingResult struct {
	Architecture string
	// Latency is the per-decision latency distribution.
	Latency stats.Welford
	// WinRate is the colocation-game success rate achieved.
	WinRate stats.Proportion
	// QuantumFraction is the share of rounds decided with a live pair
	// (quantum architecture only).
	QuantumFraction float64
	// Supply and Pool expose the entanglement supply chain's lifecycle
	// counters (quantum architecture only; zero for the classical rows).
	Supply entangle.ServiceStats
	Pool   entangle.PoolStats
}

// RunTiming executes the three architectures over the same request stream
// and returns their rows.
func RunTiming(cfg TimingConfig) []TimingResult {
	game := games.NewColocationCHSH()

	local := runLocalClassical(cfg, game)
	quantum := runQuantumPreShared(cfg, game)
	coordinated := runCoordinated(cfg, game)

	return []TimingResult{local, quantum, coordinated}
}

// runLocalClassical: decide immediately with the best classical strategy.
func runLocalClassical(cfg TimingConfig, game *games.XORGame) TimingResult {
	rng := xrand.New(cfg.Seed, 1)
	s := game.BestClassicalSampler()
	res := TimingResult{Architecture: "local-classical"}
	for i := 0; i < cfg.Rounds; i++ {
		x, y := game.SampleInput(rng)
		a, b := s.Sample(x, y, rng)
		res.WinRate.Add(game.Wins(x, y, a, b))
		res.Latency.Add(0)
	}
	return res
}

// runQuantumPreShared: an SPDC service fills a pool; each arriving round
// consumes a pair (decision latency = QNIC measurement) or falls back to
// the local classical strategy (latency ~0).
func runQuantumPreShared(cfg TimingConfig, game *games.XORGame) TimingResult {
	rng := xrand.New(cfg.Seed, 2)
	var engine netsim.Engine
	pool := entangle.NewPool(cfg.QNIC, 0)
	svc := entangle.StartService(&engine, cfg.Source, pool, rng.Split(1))

	session, err := NewSession(Config{
		Game:     game,
		Supplier: pool,
		QNIC:     cfg.QNIC,
		Seed:     cfg.Seed,
	})
	if err != nil {
		panic(err)
	}

	res := TimingResult{Architecture: "quantum-pre-shared"}
	arrivals := &workload.PoissonArrivals{Rate: cfg.RequestRate}
	arrRng := rng.Split(2)
	gameRng := rng.Split(3)
	for i := 0; i < cfg.Rounds; i++ {
		at := arrivals.Next(arrRng)
		engine.RunUntil(at) // let the source catch up to this wall-clock time
		x, y := game.SampleInput(gameRng)
		d := session.Round(engine.Now(), x, y)
		res.WinRate.Add(game.Wins(x, y, d.A, d.B))
		res.Latency.Add(d.Latency.Seconds())
	}
	svc.Stop()
	st := session.Stats()
	res.QuantumFraction = float64(st.QuantumRounds) / float64(st.Rounds)
	res.Supply = svc.Stats()
	res.Pool = pool.Stats()
	return res
}

// runCoordinated: server A ships its input to server B over the fiber;
// B answers for both with full knowledge (the colocation game is winnable
// with certainty given both inputs) and replies. A's decision completes
// after a full RTT.
func runCoordinated(cfg TimingConfig, game *games.XORGame) TimingResult {
	rng := xrand.New(cfg.Seed, 3)
	var engine netsim.Engine
	net := netsim.NewNetwork(&engine)
	res := TimingResult{Architecture: "coordinated-classical"}

	type roundState struct {
		x, y    int
		started time.Duration
	}
	var cur roundState

	const a, b netsim.NodeID = 0, 1
	net.AddNode(a, func(n *netsim.Network, m netsim.Message) {
		// Reply received: decision complete after the round trip.
		res.Latency.Add((n.Engine.Now() - cur.started).Seconds())
		// With both inputs known B picks a = 0, b = Parity[x][y], which
		// satisfies any XOR win condition with certainty.
		res.WinRate.Add(game.Wins(cur.x, cur.y, 0, game.Parity[cur.x][cur.y]))
	})
	net.AddNode(b, func(n *netsim.Network, m netsim.Message) {
		n.Send(b, a, "answer")
	})
	net.ConnectDistance(a, b, cfg.DistanceM)

	arrivals := &workload.PoissonArrivals{Rate: cfg.RequestRate}
	for i := 0; i < cfg.Rounds; i++ {
		at := arrivals.Next(rng)
		engine.RunUntil(at)
		x, y := game.SampleInput(rng)
		cur = roundState{x: x, y: y, started: engine.Now()}
		net.Send(a, b, "input")
		engine.Run(0) // drain this round's exchange before the next
	}
	return res
}

// ParetoSummary renders the frontier rows for reports.
func ParetoSummary(rows []TimingResult) string {
	out := ""
	for _, r := range rows {
		out += fmt.Sprintf("%-24s latency=%9.1fµs  win=%.4f  quantum=%.2f\n",
			r.Architecture, r.Latency.Mean()*1e6, r.WinRate.Rate(), r.QuantumFraction)
	}
	return out
}
