package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/entangle"
	"repro/internal/faults"
	"repro/internal/games"
)

func chaosConfig(base int) ChaosConfig {
	return ChaosConfig{
		Game:    games.NewColocationCHSH(),
		Source:  entangle.DefaultSource(),
		QNIC:    entangle.DefaultQNIC(),
		PoolCap: 64,
		Chain:   &entangle.RepeaterChain{Segments: 4, Source: entangle.DefaultSource(), BSMSuccess: 0.5},
		Phases:  DefaultChaosPhases(base),
		Seed:    42,
	}
}

// TestRunChaosHoldsClassicalFloor is the PR's acceptance criterion: in every
// fault phase the session wins at least as often as the best classical
// strategy does on the identical inputs. The comparison is paired and the
// classical strategy is deterministic, so the assertion is exact, not
// statistical.
func TestRunChaosHoldsClassicalFloor(t *testing.T) {
	res, err := RunChaos(chaosConfig(1500))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Phases {
		if p.Wins < p.ClassicalWins {
			t.Errorf("phase %q: wins %d below the paired classical floor %d",
				p.Name, p.Wins, p.ClassicalWins)
		}
	}
	if !res.FloorHeld {
		t.Error("FloorHeld = false")
	}
}

// TestRunChaosFaultPhasesShapeTheRun checks the fault kinds actually bite:
// supply and win rate track the phase script.
func TestRunChaosFaultPhasesShapeTheRun(t *testing.T) {
	res, err := RunChaos(chaosConfig(1500))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ChaosPhaseResult{}
	for _, p := range res.Phases {
		byName[p.Name] = p
	}

	nominal := byName["nominal"]
	if nominal.QuantumFraction() < 0.5 {
		t.Fatalf("nominal phase quantum fraction %.3f — supply chain broken", nominal.QuantumFraction())
	}
	if nominal.WinRate() < 0.78 {
		t.Fatalf("nominal win rate %.4f shows no quantum advantage", nominal.WinRate())
	}

	outage := byName["source-outage"]
	// A 64-pair pool at 10µs round spacing drains within the first ~64
	// rounds of a 1500-round outage: the phase is dominated by fallback.
	if outage.QuantumFraction() > 0.2 {
		t.Fatalf("outage phase quantum fraction %.3f — outage did not starve the pool", outage.QuantumFraction())
	}
	if outage.LevelRounds[DegradeClassical] == 0 {
		t.Fatal("outage phase never reached the classical rung")
	}

	burst := byName["fiber-burst"]
	if burst.QuantumFraction() >= nominal.QuantumFraction() {
		t.Fatalf("fiber burst did not thin supply: %.3f vs nominal %.3f",
			burst.QuantumFraction(), nominal.QuantumFraction())
	}

	spike := byName["decoherence-spike"]
	if spike.QuantumRounds > 0 && spike.MeanVisibility >= nominal.MeanVisibility {
		t.Fatalf("decoherence spike did not lower delivered visibility: %.4f vs %.4f",
			spike.MeanVisibility, nominal.MeanVisibility)
	}

	cooldown := byName["cooldown"]
	if cooldown.QuantumFraction() < 0.5 || cooldown.WinRate() < 0.78 {
		t.Fatalf("no recovery in cooldown: quantum %.3f win %.4f",
			cooldown.QuantumFraction(), cooldown.WinRate())
	}

	if res.Injector.FlushedPairs == 0 {
		t.Fatal("pool-flush phase flushed nothing")
	}
	if res.Service.Suppressed == 0 {
		t.Fatal("outage suppressed no generation ticks")
	}
}

// TestRunChaosIsDeterministic: identical configs give identical results —
// the whole run is a pure function of the config.
func TestRunChaosIsDeterministic(t *testing.T) {
	a, err := RunChaos(chaosConfig(400))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(chaosConfig(400))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Phases, b.Phases) {
		t.Fatal("phase results differ between identical runs")
	}
	if a.Session != b.Session || a.Service != b.Service || a.Pool != b.Pool {
		t.Fatal("aggregate stats differ between identical runs")
	}
}

func TestRunChaosValidation(t *testing.T) {
	if _, err := RunChaos(ChaosConfig{}); err == nil {
		t.Fatal("missing game not rejected")
	}
	cfg := chaosConfig(10)
	cfg.Phases = nil
	if _, err := RunChaos(cfg); err == nil {
		t.Fatal("missing phases not rejected")
	}
}

func TestChaosConfigSchedule(t *testing.T) {
	cfg := ChaosConfig{
		RequestRate: 1e5, // 10µs step
		Phases: []ChaosPhase{
			{Name: "warm", Rounds: 100, Fault: faults.KindNone},
			{Name: "out", Rounds: 50, Fault: faults.KindSourceOutage},
			{Name: "flush", Rounds: 50, Fault: faults.KindPoolFlush},
		},
	}
	s := cfg.Schedule()
	if len(s.Windows) != 2 {
		t.Fatalf("windows = %d, want 2 (KindNone emits none)", len(s.Windows))
	}
	if s.Windows[0].Start != time.Millisecond || s.Windows[0].End != 1500*time.Microsecond {
		t.Fatalf("outage window misaligned: %+v", s.Windows[0])
	}
	if s.Windows[1].Start != 1500*time.Microsecond || s.Windows[1].End != s.Windows[1].Start {
		t.Fatalf("flush window misaligned: %+v", s.Windows[1])
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
