// Package core packages the paper's contribution as the system-level
// abstraction its conclusion calls for: "primitives … packaged in
// system-level abstractions that systems designers can adopt without
// needing to understand the underlying quantum mechanics."
//
// A Session binds together
//
//   - a non-local game (the coordination objective — e.g. the colocation
//     CHSH game for affinity-aware load balancing),
//   - an entanglement Supplier (the Figure 1 substrate: SPDC source, fiber,
//     QNIC pools), and
//   - a classical fallback strategy,
//
// and then answers one question per round: given the two parties' local
// inputs, what should each decide *right now*, with zero communication?
// When the supply is dry, or so noisy that the quantum strategy would lose
// to the best classical one, the session transparently falls back —
// correlation quality degrades, correctness and latency never do.
package core

import (
	"fmt"
	"time"

	"repro/internal/entangle"
	"repro/internal/games"
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Config assembles a Session.
type Config struct {
	// Game is the coordination objective. Required.
	Game *games.XORGame
	// Supplier provides entangled pairs. Required (use
	// entangle.PerfectSupplier for idealized studies).
	Supplier entangle.Supplier
	// QNIC models decision latency; zero value means instantaneous
	// measurement.
	QNIC entangle.QNICConfig
	// Seed drives all of the session's randomness.
	Seed uint64

	// Health, when non-nil, enables the graceful-degradation ladder: a
	// HealthMonitor tracks rolling delivered visibility and supply rate and
	// the session steps between quantum, re-optimized-quantum, classical
	// and random strategies with hysteresis. Nil preserves the original
	// two-mode (quantum/fallback) behavior exactly.
	Health *HealthConfig
	// Engine, when set together with Retry.MaxWait, lets a round wait a
	// bounded simulated time for an in-flight pair (engine.RunUntil) before
	// falling back. The session must then be driven from OUTSIDE engine
	// callbacks (advance the engine to `now`, then call Round).
	Engine *netsim.Engine
	// Retry bounds the in-round wait for pool refill. Zero = never wait.
	Retry RetryPolicy
}

// Mode records how a round was decided.
type Mode int

const (
	// ModeQuantum means an entangled pair was consumed.
	ModeQuantum Mode = iota
	// ModeFallback means the classical fallback answered (pool dry or
	// visibility below the advantage threshold).
	ModeFallback
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeQuantum {
		return "quantum"
	}
	return "fallback"
}

// Decision is the outcome of one coordination round.
type Decision struct {
	A, B       int
	Mode       Mode
	Visibility float64 // pair visibility used (0 in fallback mode)
	// Latency is the local decision latency: QNIC measurement time for
	// quantum rounds, ~0 for the classical fallback. Crucially it never
	// includes a network round trip — that is the paper's whole point
	// (Figure 2).
	Latency time.Duration
	// Level is the degradation-ladder rung the round was played at
	// (always DegradeNone/DegradeClassical in legacy two-mode sessions).
	Level DegradeLevel
	// Waited is the simulated time spent waiting for an in-flight pair
	// before this round's strategy was chosen (0 unless Retry is set).
	Waited time.Duration
}

// Stats aggregates a session's history.
type Stats struct {
	Rounds         int64
	QuantumRounds  int64
	FallbackRounds int64
	// Wins tracks game-win rate over all rounds.
	Wins stats.Proportion
	// Visibility tracks consumed pairs' visibility.
	Visibility stats.Welford
	// LevelRounds counts rounds played at each degradation rung (resilient
	// sessions only; legacy sessions fold into None/Classical).
	LevelRounds [NumLevels]int64
	// Retries counts in-round waits for pool refill; Waited totals the
	// simulated time they consumed.
	Retries int64
	Waited  time.Duration
}

// Session coordinates two parties through a shared game and entanglement
// supply. Sessions are not safe for concurrent use; the simulations that
// drive them are single-threaded and deterministic.
type Session struct {
	cfg      Config
	rng      *xrand.RNG
	quantum  *games.XORQuantumSampler
	fallback games.JointSampler
	// critVisibility is the visibility below which the quantum strategy no
	// longer beats the classical fallback; the session then prefers the
	// fallback even when a pair is available.
	critVisibility float64
	classicalValue float64
	quantumValue   float64
	st             Stats

	// Resilient-session state (nil/zero in legacy two-mode sessions).
	health *HealthMonitor
	retry  RetryPolicy
	// seesawRNG feeds re-optimization see-saws so strategy synthesis never
	// perturbs the round stream.
	seesawRNG *xrand.RNG
	// reopt caches re-optimized samplers by visibility bucket (see-saws are
	// ~10⁴ flops; visibilities within a bucket share a strategy).
	reopt map[int]games.JointSampler
}

// reoptBucket quantizes visibility for the re-optimized-sampler cache.
const reoptBucket = 0.02

// NewSession computes the game's optimal quantum and classical strategies
// and returns a ready session.
func NewSession(cfg Config) (*Session, error) {
	if cfg.Game == nil {
		return nil, fmt.Errorf("core: Config.Game is required")
	}
	if err := cfg.Game.Validate(); err != nil {
		return nil, err
	}
	if cfg.Supplier == nil {
		return nil, fmt.Errorf("core: Config.Supplier is required")
	}
	rng := xrand.New(cfg.Seed, 0xc0de)
	c := cfg.Game.ClassicalValue()
	q := cfg.Game.QuantumValue(rng)
	s := &Session{
		cfg:            cfg,
		rng:            rng,
		quantum:        q.QuantumSampler(1.0),
		fallback:       &games.DeterministicSampler{A: c.A, B: c.B},
		critVisibility: CriticalVisibility(c.Value, q.Value),
		classicalValue: c.Value,
		quantumValue:   q.Value,
	}
	if cfg.Health != nil {
		hc := *cfg.Health
		s.health = NewHealthMonitor(hc, s.critVisibility)
		s.retry = cfg.Retry.withDefaults()
		s.seesawRNG = xrand.New(cfg.Seed, 0x5ee5a)
		s.reopt = make(map[int]games.JointSampler)
	}
	return s, nil
}

// Health returns the session's health monitor (nil for legacy sessions).
func (s *Session) Health() *HealthMonitor { return s.health }

// CriticalVisibility returns the Werner visibility V* at which a quantum
// strategy with noiseless value q degrades to the classical value c:
// V·q + (1−V)/2 = c ⇒ V* = (c − ½)/(q − ½). For CHSH this is 1/√2 ≈ 0.707.
// If the game has no quantum advantage (q ≤ c), it returns 1 — the session
// will always prefer the classical strategy.
func CriticalVisibility(classical, quantum float64) float64 {
	if quantum <= classical {
		return 1
	}
	return (classical - 0.5) / (quantum - 0.5)
}

// ClassicalValue returns the game's exact classical value.
func (s *Session) ClassicalValue() float64 { return s.classicalValue }

// QuantumValue returns the game's exact quantum value.
func (s *Session) QuantumValue() float64 { return s.quantumValue }

// CriticalVis returns the session's fallback threshold.
func (s *Session) CriticalVis() float64 { return s.critVisibility }

// Round coordinates one decision at simulated time now with party inputs x
// and y. Each party's answer depends only on its own input and the shared
// (pre-distributed) resources — the joint sampling here is the testbed
// shortcut the paper's conclusion licenses for controlled studies.
func (s *Session) Round(now time.Duration, x, y int) Decision {
	if s.health != nil {
		return s.resilientRound(now, x, y)
	}
	s.st.Rounds++
	var d Decision
	if vis, ok := s.cfg.Supplier.TryConsume(now); ok && vis > s.critVisibility {
		s.quantum.Visibility = vis
		a, b := s.quantum.Sample(x, y, s.rng)
		d = Decision{A: a, B: b, Mode: ModeQuantum, Visibility: vis, Latency: s.cfg.QNIC.MeasureLatency}
		s.st.QuantumRounds++
		s.st.Visibility.Add(vis)
	} else {
		a, b := s.fallback.Sample(x, y, s.rng)
		d = Decision{A: a, B: b, Mode: ModeFallback, Level: DegradeClassical}
		s.st.FallbackRounds++
	}
	s.st.Wins.Add(s.cfg.Game.Wins(x, y, d.A, d.B))
	return d
}

// resilientRound is the graceful-degradation round: probe-gated consumption,
// bounded retry for in-flight pairs, and strategy selection by the health
// monitor's ladder rung.
func (s *Session) resilientRound(now time.Duration, x, y int) Decision {
	s.st.Rounds++
	var d Decision

	vis, ok := 0.0, false
	attempted := s.health.ShouldProbe(s.st.Rounds - 1)
	if attempted {
		vis, ok = s.cfg.Supplier.TryConsume(now)
		if !ok && s.retry.MaxWait > 0 && s.cfg.Engine != nil && s.health.Level() <= DegradeReoptimize {
			// A pair may already be in flight down the fiber. Wait with
			// exponential backoff, bounded by MaxWait, advancing the engine
			// so scheduled deliveries can land.
			deadline := now + s.retry.MaxWait
			for wait := s.retry.Backoff; now < deadline && !ok; wait *= 2 {
				step := min(wait, deadline-now)
				now += step
				d.Waited += step
				s.st.Retries++
				s.cfg.Engine.RunUntil(now)
				vis, ok = s.cfg.Supplier.TryConsume(now)
			}
			s.st.Waited += d.Waited
		}
	}

	level := s.health.Level()
	if attempted {
		level = s.health.ObserveAttempt(ok, vis)
	}
	// The monitor's rung is a supply judgment; the round in hand still
	// plays quantum only if it actually holds a usable pair.
	playQuantum := ok && vis > s.critVisibility && level <= DegradeReoptimize

	switch {
	case playQuantum && level == DegradeNone:
		s.quantum.Visibility = vis
		a, b := s.quantum.Sample(x, y, s.rng)
		d.A, d.B = a, b
		d.Mode, d.Visibility, d.Latency = ModeQuantum, vis, s.cfg.QNIC.MeasureLatency
		s.st.QuantumRounds++
		s.st.Visibility.Add(vis)
	case playQuantum: // DegradeReoptimize
		a, b := s.reoptSampler(s.health.Visibility()).Sample(x, y, s.rng)
		d.A, d.B = a, b
		d.Mode, d.Visibility, d.Latency = ModeQuantum, vis, s.cfg.QNIC.MeasureLatency
		s.st.QuantumRounds++
		s.st.Visibility.Add(vis)
	case level == DegradeRandom:
		d.A, d.B = s.rng.IntN(2), s.rng.IntN(2)
		d.Mode = ModeFallback
		s.st.FallbackRounds++
	default:
		a, b := s.fallback.Sample(x, y, s.rng)
		d.A, d.B = a, b
		d.Mode = ModeFallback
		s.st.FallbackRounds++
	}
	if d.Mode == ModeQuantum {
		d.Level = level
	} else if level < DegradeClassical {
		d.Level = DegradeClassical // pool dry at a healthy rung: classical round
	} else {
		d.Level = level
	}
	s.st.LevelRounds[d.Level]++
	s.st.Wins.Add(s.cfg.Game.Wins(x, y, d.A, d.B))
	return d
}

// BrownoutRound plays one round at the load-driven brownout rung: the best
// classical pair strategy, with no supply probe, no pool consumption, no
// quantum sampling and no engine catch-up — the cheapest correct answer
// the session can give. The serving layer calls it instead of Round while
// admission control has the session's shard in brownout, so sustained
// overload degrades compute cost before any high-priority shedding.
// Consuming only the fallback sampler's randomness keeps it on the same
// round RNG stream as a classical Round, and the health monitor is left
// untouched (no probe happened, so there is nothing to observe).
func (s *Session) BrownoutRound(x, y int) Decision {
	s.st.Rounds++
	a, b := s.fallback.Sample(x, y, s.rng)
	d := Decision{A: a, B: b, Mode: ModeFallback, Level: DegradeClassical}
	s.st.FallbackRounds++
	s.st.LevelRounds[DegradeClassical]++
	s.st.Wins.Add(s.cfg.Game.Wins(x, y, d.A, d.B))
	return d
}

// reoptSampler returns the cached re-optimized strategy for the visibility's
// bucket, synthesizing it on first use.
func (s *Session) reoptSampler(v float64) games.JointSampler {
	b := int(v / reoptBucket)
	if sp, ok := s.reopt[b]; ok {
		return sp
	}
	center := (float64(b) + 0.5) * reoptBucket
	sp, _ := games.ReoptimizedSampler(s.cfg.Game, center, s.seesawRNG)
	s.reopt[b] = sp
	return sp
}

// PlayReferee drives `rounds` full game rounds with referee-drawn inputs at
// a fixed simulated time step per round, returning the final stats — the
// quickest way to validate a deployment's effective win rate.
func (s *Session) PlayReferee(rounds int, start, step time.Duration) Stats {
	now := start
	for i := 0; i < rounds; i++ {
		x, y := s.cfg.Game.SampleInput(s.rng)
		s.Round(now, x, y)
		now += step
	}
	return s.st
}

// Stats returns the session's accumulated statistics.
func (s *Session) Stats() Stats { return s.st }

// ExpectedWinRate predicts the session's long-run win rate given the
// fraction of rounds served quantum at mean visibility v̄:
// f·(v̄·q + (1−v̄)/2) + (1−f)·c. Used to cross-check measurements.
func (s *Session) ExpectedWinRate(quantumFraction, meanVisibility float64) float64 {
	qv := meanVisibility*s.quantumValue + (1-meanVisibility)/2
	return quantumFraction*qv + (1-quantumFraction)*s.classicalValue
}
