package core

import (
	"testing"
	"time"

	"repro/internal/entangle"
	"repro/internal/games"
	"repro/internal/netsim"
)

const critV = 0.7071067811865476 // 1/√2, the CHSH-critical visibility

func feed(h *HealthMonitor, n int, available bool, vis float64) DegradeLevel {
	l := h.Level()
	for i := 0; i < n; i++ {
		l = h.ObserveAttempt(available, vis)
	}
	return l
}

func TestHealthLadderDegradesImmediately(t *testing.T) {
	h := NewHealthMonitor(HealthConfig{Window: 8, BaseVisibility: 0.98}, critV)
	if h.Level() != DegradeNone {
		t.Fatalf("fresh monitor level = %v", h.Level())
	}
	feed(h, 8, true, 0.97)
	if h.Level() != DegradeNone {
		t.Fatalf("healthy supply degraded to %v", h.Level())
	}
	// Visibility sags below (1−ReoptMargin)·base but stays above critical.
	feed(h, 8, true, 0.85)
	if h.Level() != DegradeReoptimize {
		t.Fatalf("sagging visibility gave %v, want reoptimize", h.Level())
	}
	// Below critical: classical, immediately on the rolling mean crossing.
	feed(h, 8, true, 0.5)
	if h.Level() != DegradeClassical {
		t.Fatalf("sub-critical visibility gave %v, want classical", h.Level())
	}
}

func TestHealthLadderDegradesOnSupplyRate(t *testing.T) {
	h := NewHealthMonitor(HealthConfig{Window: 16, BaseVisibility: 0.98}, critV)
	feed(h, 16, true, 0.97)
	// Pairs stop arriving entirely: even though delivered visibility was
	// fine, the supply-rate floor forces classical.
	feed(h, 16, false, 0)
	if h.Level() != DegradeClassical {
		t.Fatalf("starved supply gave %v, want classical", h.Level())
	}
}

func TestHealthLadderRecoveryIsHysteretic(t *testing.T) {
	h := NewHealthMonitor(HealthConfig{Window: 8, BaseVisibility: 0.98, RecoverMargin: 0.02}, critV)
	feed(h, 8, true, 0.5)
	if h.Level() != DegradeClassical {
		t.Fatalf("setup: %v", h.Level())
	}
	// Hovering just over critical: degraded state must hold (hysteresis).
	feed(h, 8, true, critV+0.01)
	if h.Level() != DegradeClassical {
		t.Fatalf("marginal visibility recovered to %v; hysteresis broken", h.Level())
	}
	// Clearing the margin decisively recovers.
	feed(h, 8, true, 0.97)
	if h.Level() != DegradeNone {
		t.Fatalf("full recovery gave %v", h.Level())
	}
	if h.Transitions() < 2 {
		t.Fatalf("transitions = %d", h.Transitions())
	}
}

func TestHealthProbeCadence(t *testing.T) {
	h := NewHealthMonitor(HealthConfig{Window: 8, ProbeEvery: 4, BaseVisibility: 0.98}, critV)
	for round := int64(0); round < 8; round++ {
		if !h.ShouldProbe(round) {
			t.Fatalf("healthy monitor must always attempt (round %d)", round)
		}
	}
	feed(h, 8, false, 0)
	probes := 0
	for round := int64(0); round < 16; round++ {
		if h.ShouldProbe(round) {
			probes++
		}
	}
	if probes != 4 {
		t.Fatalf("degraded monitor probed %d of 16 rounds, want 4", probes)
	}
}

func TestHealthForcePinsLevel(t *testing.T) {
	h := NewHealthMonitor(HealthConfig{Window: 4, BaseVisibility: 0.98}, critV)
	h.Force(DegradeRandom)
	feed(h, 8, true, 0.97)
	if h.Level() != DegradeRandom {
		t.Fatalf("forced level drifted to %v", h.Level())
	}
	h.Force(-1)
	feed(h, 1, true, 0.97)
	if h.Level() != DegradeNone {
		t.Fatalf("released monitor stuck at %v", h.Level())
	}
}

func TestDegradeLevelStrings(t *testing.T) {
	want := map[DegradeLevel]string{
		DegradeNone: "quantum", DegradeReoptimize: "reoptimized",
		DegradeClassical: "classical", DegradeRandom: "random",
	}
	for l, s := range want {
		if l.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(l), l.String(), s)
		}
	}
}

// TestResilientSessionLegacyEquivalence: with Health nil the session must
// behave exactly as before — this guards the byte-identical E1–E16 outputs.
func TestResilientSessionLegacyEquivalence(t *testing.T) {
	mk := func(health *HealthConfig) Stats {
		s, err := NewSession(Config{
			Game:     games.NewColocationCHSH(),
			Supplier: entangle.PerfectSupplier{Visibility: 0.95},
			Seed:     42,
			Health:   health,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s.PlayReferee(2000, 0, time.Microsecond)
	}
	legacy := mk(nil)
	if legacy.QuantumRounds != legacy.Rounds || legacy.FallbackRounds != 0 {
		t.Fatalf("perfect supply should be all-quantum: %+v", legacy)
	}
	// A resilient session over the same perfect supply stays on the top
	// rung and plays the identical strategy with the identical RNG stream.
	resilient := mk(&HealthConfig{BaseVisibility: 0.95})
	if resilient.Wins.Successes() != legacy.Wins.Successes() {
		t.Fatalf("resilient session diverged on a healthy supply: %d vs %d wins",
			resilient.Wins.Successes(), legacy.Wins.Successes())
	}
	if resilient.LevelRounds[DegradeNone] != resilient.Rounds {
		t.Fatalf("healthy resilient session left the top rung: %+v", resilient.LevelRounds)
	}
}

// TestResilientSessionDegradesToClassicalFloor: with an empty supplier the
// resilient session must play the best classical strategy, not random.
func TestResilientSessionDegradesToClassicalFloor(t *testing.T) {
	game := games.NewColocationCHSH()
	s, err := NewSession(Config{
		Game:     game,
		Supplier: entangle.EmptySupplier{},
		Seed:     7,
		Health:   &HealthConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.PlayReferee(4000, 0, time.Microsecond)
	if st.QuantumRounds != 0 {
		t.Fatalf("empty supplier played %d quantum rounds", st.QuantumRounds)
	}
	if st.LevelRounds[DegradeClassical] != st.Rounds {
		t.Fatalf("level occupancy: %+v", st.LevelRounds)
	}
	// The deterministic classical strategy wins 0.75 ± sampling noise.
	if !st.Wins.Contains95(0.75) {
		t.Fatalf("classical floor missed: rate %.4f", st.Wins.Rate())
	}
}

// TestSessionRetryCatchesInFlightPair: a round arriving while the pair is
// still in the fiber waits (bounded) and then plays quantum.
func TestSessionRetryCatchesInFlightPair(t *testing.T) {
	engine := &netsim.Engine{}
	q := entangle.DefaultQNIC()
	pool := entangle.NewPool(q, 0)
	game := games.NewColocationCHSH()
	s, err := NewSession(Config{
		Game:     game,
		Supplier: pool,
		QNIC:     q,
		Seed:     3,
		Health:   &HealthConfig{},
		Engine:   engine,
		Retry:    RetryPolicy{MaxWait: 10 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A pair lands at t=6µs — scheduled, not yet delivered.
	engine.Schedule(6*time.Microsecond, func() {
		pool.Add(entangle.Pair{ArrivedAt: engine.Now(), V0: 0.98})
	})
	d := s.Round(0, 0, 0)
	if d.Mode != ModeQuantum {
		t.Fatalf("round did not catch the in-flight pair: %+v", d)
	}
	if d.Waited == 0 || d.Waited > 10*time.Microsecond {
		t.Fatalf("waited %v, want in (0, 10µs]", d.Waited)
	}
	st := s.Stats()
	if st.Retries == 0 || st.Waited != d.Waited {
		t.Fatalf("retry accounting: %+v", st)
	}

	// With nothing in flight the wait gives up at MaxWait and falls back.
	d2 := s.Round(engine.Now(), 0, 0)
	if d2.Mode != ModeFallback {
		t.Fatalf("dry retry should fall back: %+v", d2)
	}
	if d2.Waited != 10*time.Microsecond {
		t.Fatalf("dry retry waited %v, want full 10µs budget", d2.Waited)
	}
}

// TestSessionReoptimizeRungPlaysValidStrategy: force the sag regime and
// check the re-optimized rung still wins well above classical.
func TestSessionReoptimizeRungPlaysValidStrategy(t *testing.T) {
	game := games.NewColocationCHSH()
	// Visibility 0.85: above critical (0.707) but sagging well below the
	// 0.98 baseline — the monitor settles on DegradeReoptimize.
	s, err := NewSession(Config{
		Game:     game,
		Supplier: entangle.PerfectSupplier{Visibility: 0.85},
		Seed:     11,
		Health:   &HealthConfig{BaseVisibility: 0.98},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.PlayReferee(6000, 0, time.Microsecond)
	if st.LevelRounds[DegradeReoptimize] == 0 {
		t.Fatalf("sagging visibility never reached the reoptimize rung: %+v", st.LevelRounds)
	}
	// Expected value at V=0.85: 0.85·q + 0.15/2 ≈ 0.80 — above classical.
	if st.Wins.Rate() < 0.76 {
		t.Fatalf("reoptimized play win rate %.4f not above the classical floor", st.Wins.Rate())
	}
}

// TestBrownoutClampsEffectiveLevel: the load-driven rung composes with the
// visibility ladder by max — a healthy session reads classical while
// browned out, an already-degraded one is unchanged, and each effective
// change counts as a transition.
func TestBrownoutClampsEffectiveLevel(t *testing.T) {
	h := NewHealthMonitor(HealthConfig{Window: 8, BaseVisibility: 0.98}, critV)
	feed(h, 8, true, 0.97)
	if h.Level() != DegradeNone {
		t.Fatalf("setup: %v", h.Level())
	}

	h.SetBrownout(true)
	if !h.Brownout() || h.Level() != DegradeClassical {
		t.Fatalf("brownout on: level %v, want classical", h.Level())
	}
	if h.Transitions() != 1 {
		t.Fatalf("transitions after brownout = %d, want 1", h.Transitions())
	}
	// Idempotent: re-engaging is a no-op.
	h.SetBrownout(true)
	if h.Transitions() != 1 {
		t.Fatalf("re-engage counted a transition: %d", h.Transitions())
	}

	// The visibility ladder keeps evolving underneath; recovery observed
	// while browned out does not lift the clamp.
	feed(h, 8, true, 0.97)
	if h.Level() != DegradeClassical {
		t.Fatalf("brownout released by healthy supply: %v", h.Level())
	}

	h.SetBrownout(false)
	if h.Level() != DegradeNone {
		t.Fatalf("brownout off: level %v, want quantum", h.Level())
	}
	if h.Transitions() != 2 {
		t.Fatalf("transitions after release = %d, want 2", h.Transitions())
	}
}

// TestBrownoutComposesWithDegradedLadder: when the visibility ladder is
// already at classical or worse, the brownout flip changes nothing
// effective and therefore counts no transition; releasing brownout while
// the supply is still bad keeps the session classical (never skips down).
func TestBrownoutComposesWithDegradedLadder(t *testing.T) {
	h := NewHealthMonitor(HealthConfig{Window: 8, BaseVisibility: 0.98}, critV)
	feed(h, 8, true, 0.5) // sub-critical: ladder at classical
	base := h.Transitions()

	h.SetBrownout(true)
	if h.Level() != DegradeClassical || h.Transitions() != base {
		t.Fatalf("brownout over classical: level %v transitions %d (base %d)",
			h.Level(), h.Transitions(), base)
	}
	h.SetBrownout(false)
	if h.Level() != DegradeClassical || h.Transitions() != base {
		t.Fatalf("release over classical: level %v transitions %d", h.Level(), h.Transitions())
	}

	// Forced random (dead monitor) outranks brownout's classical clamp.
	h.Force(DegradeRandom)
	h.SetBrownout(true)
	if h.Level() != DegradeRandom {
		t.Fatalf("brownout demoted forced random to %v", h.Level())
	}
	h.SetBrownout(false)
}

// TestBrownoutThrottlesProbing: while browned out, a session probes at the
// degraded cadence even if the underlying ladder is healthy — overload is
// exactly when per-round supply probes should stop.
func TestBrownoutThrottlesProbing(t *testing.T) {
	h := NewHealthMonitor(HealthConfig{Window: 8, ProbeEvery: 4, BaseVisibility: 0.98}, critV)
	feed(h, 8, true, 0.97)
	h.SetBrownout(true)
	probes := 0
	for round := int64(0); round < 16; round++ {
		if h.ShouldProbe(round) {
			probes++
		}
	}
	if probes != 4 {
		t.Fatalf("browned-out monitor probed %d of 16 rounds, want 4", probes)
	}
}
