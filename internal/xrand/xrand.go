// Package xrand provides the deterministic random-number plumbing used by
// every experiment in this repository. All randomness flows from explicit
// seeds so any figure or table can be regenerated bit-for-bit.
//
// The generator is PCG-64 (via math/rand/v2), and Split derives independent
// child streams from a parent so concurrent simulation entities (balancers,
// switches, sources) do not share state.
package xrand

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random stream. The zero value is not usable; create
// streams with New or Split.
type RNG struct {
	r *rand.Rand
}

// New returns a stream seeded from the two words. Using the pair (seed, salt)
// rather than one word makes derived-stream construction collision-resistant.
func New(seed, salt uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, salt))}
}

// Split derives a child stream. Children with distinct indices are
// statistically independent of each other and of the parent's future output.
func (g *RNG) Split(index uint64) *RNG {
	return New(g.r.Uint64(), mix(index))
}

// Derive builds the index-th member of an independent stream family rooted
// at base. Unlike Split it reads no parent state, so it is the seeding
// primitive for deterministic fan-out: a caller draws base from its own
// stream once, then parallel job i uses Derive(base, i) — the jobs' streams
// are identical whether they run serially or on any number of workers.
func Derive(base, index uint64) *RNG {
	return New(base, mix(index))
}

// mix is splitmix64's finalizer; it decorrelates consecutive indices.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform sample in [0, n).
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an Exp(1) sample; divide by rate for Exp(rate).
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Poisson returns a Poisson(λ) sample. For small λ it uses Knuth's product
// method; for large λ a normal approximation with continuity correction,
// which is accurate to well under the noise floor of our experiments.
func (g *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= g.r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := lambda + math.Sqrt(lambda)*g.r.NormFloat64() + 0.5
	if n < 0 {
		return 0
	}
	return int(n)
}

// Perm returns a uniform random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle permutes the first n indices via the provided swap function.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Categorical samples an index proportionally to the (non-negative) weights.
// It panics if the weights sum to zero or any weight is negative.
func (g *RNG) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("xrand: negative or NaN categorical weight")
		}
		total += w
	}
	if total == 0 {
		panic("xrand: categorical weights sum to zero")
	}
	u := g.r.Float64() * total
	var acc float64
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1 // floating-point slack lands on the last bucket
}

// TwoDistinct returns two distinct uniform indices from [0, n). Panics if n < 2.
func (g *RNG) TwoDistinct(n int) (int, int) {
	if n < 2 {
		panic("xrand: TwoDistinct needs n >= 2")
	}
	a := g.r.IntN(n)
	b := g.r.IntN(n - 1)
	if b >= a {
		b++
	}
	return a, b
}

// SampleWithoutReplacement returns k distinct uniform indices from [0, n)
// using Floyd's algorithm. The result order is randomized.
func (g *RNG) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		panic("xrand: sample size exceeds population")
	}
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := g.r.IntN(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	g.r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
