package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 1)
	b := New(42, 1)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1, 0)
	b := New(2, 0)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/64 identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7, 7)
	c1 := parent.Split(0)
	c2 := parent.Split(1)
	same := 0
	for i := 0; i < 64; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling streams produced %d/64 identical outputs", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(9, 3).Split(5)
	b := New(9, 3).Split(5)
	for i := 0; i < 32; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split must be deterministic in (seed, index)")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	g := New(1, 1)
	for i := 0; i < 10000; i++ {
		f := g.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntNUniformity(t *testing.T) {
	g := New(3, 3)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[g.IntN(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestBool(t *testing.T) {
	g := New(4, 4)
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate = %v", rate)
	}
}

func TestPoissonSmallLambdaMean(t *testing.T) {
	g := New(5, 5)
	const lambda, trials = 3.5, 200000
	var sum, sumsq float64
	for i := 0; i < trials; i++ {
		k := float64(g.Poisson(lambda))
		sum += k
		sumsq += k * k
	}
	mean := sum / trials
	variance := sumsq/trials - mean*mean
	if math.Abs(mean-lambda) > 0.05 {
		t.Fatalf("Poisson mean = %v, want %v", mean, lambda)
	}
	if math.Abs(variance-lambda) > 0.15 {
		t.Fatalf("Poisson variance = %v, want %v", variance, lambda)
	}
}

func TestPoissonLargeLambdaMean(t *testing.T) {
	g := New(6, 6)
	const lambda, trials = 200.0, 50000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += float64(g.Poisson(lambda))
	}
	mean := sum / trials
	if math.Abs(mean-lambda) > 1.0 {
		t.Fatalf("Poisson(%v) mean = %v", lambda, mean)
	}
}

func TestPoissonZeroAndNegative(t *testing.T) {
	g := New(7, 7)
	if g.Poisson(0) != 0 || g.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive rate must be 0")
	}
}

func TestCategorical(t *testing.T) {
	g := New(8, 8)
	weights := []float64{1, 3, 0, 6}
	counts := make([]int, 4)
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[g.Categorical(weights)]++
	}
	if counts[2] != 0 {
		t.Fatal("zero-weight bucket was sampled")
	}
	if math.Abs(float64(counts[1])/trials-0.3) > 0.01 {
		t.Fatalf("bucket 1 rate = %v, want 0.3", float64(counts[1])/trials)
	}
	if math.Abs(float64(counts[3])/trials-0.6) > 0.01 {
		t.Fatalf("bucket 3 rate = %v, want 0.6", float64(counts[3])/trials)
	}
}

func TestCategoricalPanics(t *testing.T) {
	g := New(9, 9)
	for _, bad := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for weights %v", bad)
				}
			}()
			g.Categorical(bad)
		}()
	}
}

func TestTwoDistinct(t *testing.T) {
	g := New(10, 10)
	for i := 0; i < 10000; i++ {
		a, b := g.TwoDistinct(5)
		if a == b {
			t.Fatal("TwoDistinct returned equal indices")
		}
		if a < 0 || a >= 5 || b < 0 || b >= 5 {
			t.Fatalf("TwoDistinct out of range: %d %d", a, b)
		}
	}
	// All ordered pairs should be reachable and roughly uniform.
	counts := map[[2]int]int{}
	for i := 0; i < 40000; i++ {
		a, b := g.TwoDistinct(4)
		counts[[2]int{a, b}]++
	}
	if len(counts) != 12 {
		t.Fatalf("expected 12 ordered pairs, got %d", len(counts))
	}
	for p, c := range counts {
		if math.Abs(float64(c)-40000.0/12) > 300 {
			t.Fatalf("pair %v count %d deviates strongly", p, c)
		}
	}
}

func TestTwoDistinctPanicsOnTinyN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1, 1).TwoDistinct(1)
}

func TestSampleWithoutReplacement(t *testing.T) {
	g := New(11, 11)
	for trial := 0; trial < 1000; trial++ {
		s := g.SampleWithoutReplacement(10, 4)
		if len(s) != 4 {
			t.Fatalf("size = %d", len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= 10 {
				t.Fatalf("out of range: %d", v)
			}
			if seen[v] {
				t.Fatalf("duplicate %d in %v", v, s)
			}
			seen[v] = true
		}
	}
	// Full sample is a permutation.
	s := g.SampleWithoutReplacement(6, 6)
	seen := map[int]bool{}
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 6 {
		t.Fatal("full-size sample is not a permutation")
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := New(12, 12)
	p := g.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if seen[v] {
			t.Fatal("duplicate in Perm")
		}
		seen[v] = true
	}
}

func BenchmarkFloat64(b *testing.B) {
	g := New(1, 1)
	for i := 0; i < b.N; i++ {
		_ = g.Float64()
	}
}

func BenchmarkCategorical4(b *testing.B) {
	g := New(1, 1)
	w := []float64{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Categorical(w)
	}
}
