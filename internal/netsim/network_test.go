package netsim

import (
	"math"
	"testing"
	"time"
)

func TestPropagationDelay(t *testing.T) {
	// 100 km of fiber at 2×10⁸ m/s is 500 µs — the Figure 2 scale.
	d := PropagationDelay(100_000)
	if math.Abs(float64(d-500*time.Microsecond)) > float64(time.Nanosecond) {
		t.Fatalf("100 km delay = %v, want 500µs", d)
	}
	if PropagationDelay(0) != 0 {
		t.Fatal("zero distance should be zero delay")
	}
}

func TestPropagationDelayNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PropagationDelay(-1)
}

func TestSendDeliversAfterLinkDelay(t *testing.T) {
	var e Engine
	n := NewNetwork(&e)
	var got Message
	n.AddNode(1, func(_ *Network, m Message) { got = m })
	n.AddNode(2, nil)
	n.Connect(1, 2, 250*time.Microsecond)

	e.Schedule(time.Millisecond, func() { n.Send(2, 1, "ping") })
	e.Run(0)

	if got.Payload != "ping" || got.From != 2 || got.To != 1 {
		t.Fatalf("message %+v", got)
	}
	if got.SentAt != time.Millisecond {
		t.Fatalf("SentAt %v", got.SentAt)
	}
	if got.DeliveredAt != time.Millisecond+250*time.Microsecond {
		t.Fatalf("DeliveredAt %v", got.DeliveredAt)
	}
}

func TestLinkIsBidirectional(t *testing.T) {
	var e Engine
	n := NewNetwork(&e)
	hits := 0
	n.AddNode(1, func(_ *Network, m Message) { hits++ })
	n.AddNode(2, func(_ *Network, m Message) { hits++ })
	n.Connect(1, 2, time.Microsecond)
	n.Send(1, 2, nil)
	n.Send(2, 1, nil)
	e.Run(0)
	if hits != 2 {
		t.Fatalf("hits = %d", hits)
	}
}

func TestSendUnconnectedPanics(t *testing.T) {
	var e Engine
	n := NewNetwork(&e)
	n.AddNode(1, nil)
	n.AddNode(2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Send(1, 2, nil)
}

func TestDuplicateNodePanics(t *testing.T) {
	var e Engine
	n := NewNetwork(&e)
	n.AddNode(1, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.AddNode(1, nil)
}

func TestLinkDelayLookup(t *testing.T) {
	var e Engine
	n := NewNetwork(&e)
	n.AddNode(1, nil)
	n.AddNode(2, nil)
	n.ConnectDistance(1, 2, 100_000)
	d, ok := n.LinkDelay(2, 1) // either direction
	if !ok || d != 500*time.Microsecond {
		t.Fatalf("LinkDelay = %v, %v", d, ok)
	}
	if _, ok := n.LinkDelay(1, 3); ok {
		t.Fatal("nonexistent link reported present")
	}
}

// TestRequestResponseRTT models the Figure 2 comparison: a classical
// coordination exchange costs a full round trip before the decision, while
// the entangled path decides locally at t=0.
func TestRequestResponseRTT(t *testing.T) {
	var e Engine
	n := NewNetwork(&e)
	oneWay := 500 * time.Microsecond
	var decisionAt time.Duration

	n.AddNode(1, func(net *Network, m Message) {
		if m.Payload == "response" {
			decisionAt = net.Engine.Now()
		}
	})
	n.AddNode(2, func(net *Network, m Message) {
		if m.Payload == "request" {
			net.Send(2, 1, "response")
		}
	})
	n.Connect(1, 2, oneWay)

	n.Send(1, 2, "request")
	e.Run(0)

	if decisionAt != 2*oneWay {
		t.Fatalf("classical decision at %v, want RTT %v", decisionAt, 2*oneWay)
	}
}
