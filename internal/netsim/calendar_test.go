package netsim

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/xrand"
)

// popRecord is one executed event in a replay: which event ran and when.
type popRecord struct {
	id int
	at time.Duration
}

// scriptNode is one event in a precomputed random schedule tree: when the
// event fires it appends its id to the trace and schedules its children at
// the given (non-negative) delays. Precomputing the tree lets the exact
// same stream replay through any engine.
type scriptNode struct {
	delay    time.Duration
	children []int
}

// buildScript generates a random event tree with heavy timestamp collisions:
// delays are drawn from a small discrete grid (including zero), so
// simultaneous-event FIFO ties are the common case, not the corner case.
func buildScript(seed uint64, roots, maxNodes int) []scriptNode {
	rng := xrand.New(seed, 0xca1e)
	grid := []time.Duration{0, 0, time.Microsecond, time.Microsecond, 2 * time.Microsecond,
		5 * time.Microsecond, 100 * time.Microsecond, 3 * time.Millisecond}
	nodes := make([]scriptNode, roots, maxNodes)
	for i := range nodes {
		nodes[i].delay = grid[rng.IntN(len(grid))]
	}
	// Breadth-first expansion: each processed node spawns 0–2 children
	// until the budget runs out.
	for i := 0; i < len(nodes) && len(nodes) < maxNodes; i++ {
		kids := rng.IntN(3)
		for k := 0; k < kids && len(nodes) < maxNodes; k++ {
			nodes = append(nodes, scriptNode{delay: grid[rng.IntN(len(grid))]})
			nodes[i].children = append(nodes[i].children, len(nodes)-1)
		}
	}
	return nodes
}

// replay schedules the script's roots and runs the engine to completion,
// returning the executed (id, time) sequence.
func replay(e *Engine, script []scriptNode, roots int) []popRecord {
	var trace []popRecord
	var schedule func(id int)
	schedule = func(id int) {
		e.Schedule(script[id].delay, func() {
			trace = append(trace, popRecord{id: id, at: e.Now()})
			for _, c := range script[id].children {
				schedule(c)
			}
		})
	}
	for id := 0; id < roots; id++ {
		schedule(id)
	}
	e.Run(0)
	return trace
}

// TestCalendarHeapDifferential is the scheduler-equivalence pin: identical
// scripted event streams replayed through the heap engine and the
// calendar-queue engine must produce byte-identical pop order, including
// simultaneous-event FIFO ties (the zero-delay grid makes those plentiful).
func TestCalendarHeapDifferential(t *testing.T) {
	for _, tc := range []struct {
		seed   uint64
		roots  int
		budget int
	}{
		{seed: 1, roots: 10, budget: 200},
		{seed: 2, roots: 100, budget: 5000},
		{seed: 3, roots: 1000, budget: 20000}, // crosses several resize thresholds
		{seed: 4, roots: 1, budget: 50},
	} {
		t.Run(fmt.Sprintf("seed=%d/n=%d", tc.seed, tc.budget), func(t *testing.T) {
			script := buildScript(tc.seed, tc.roots, tc.budget)
			heapTrace := replay(NewHeapEngine(), script, tc.roots)
			calTrace := replay(NewEngine(), script, tc.roots)
			if len(heapTrace) != len(calTrace) {
				t.Fatalf("trace lengths differ: heap %d, calendar %d", len(heapTrace), len(calTrace))
			}
			for i := range heapTrace {
				if heapTrace[i] != calTrace[i] {
					t.Fatalf("pop %d differs: heap %+v, calendar %+v", i, heapTrace[i], calTrace[i])
				}
			}
		})
	}
}

// TestCalendarHeapDifferentialRunUntil replays the same stream through both
// engines in bounded RunUntil increments, checking that cursor bookkeeping
// across partial drains cannot change the order.
func TestCalendarHeapDifferentialRunUntil(t *testing.T) {
	script := buildScript(7, 200, 4000)
	drive := func(e *Engine) []popRecord {
		var trace []popRecord
		var schedule func(id int)
		schedule = func(id int) {
			e.Schedule(script[id].delay, func() {
				trace = append(trace, popRecord{id: id, at: e.Now()})
				for _, c := range script[id].children {
					schedule(c)
				}
			})
		}
		for id := 0; id < 200; id++ {
			schedule(id)
		}
		for step := time.Microsecond; e.Pending() > 0; step *= 2 {
			e.RunUntil(e.Now() + step)
		}
		return trace
	}
	a := drive(NewHeapEngine())
	b := drive(NewEngine())
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pop %d differs: heap %+v, calendar %+v", i, a[i], b[i])
		}
	}
}

// TestCalendarSparseFarFuture exercises the direct-search fallback: a few
// events scattered over a span vastly wider than one calendar year must
// still pop in order.
func TestCalendarSparseFarFuture(t *testing.T) {
	e := NewEngine()
	var got []time.Duration
	delays := []time.Duration{time.Hour, time.Nanosecond, 30 * time.Minute,
		24 * time.Hour, 5 * time.Microsecond, time.Second}
	for _, d := range delays {
		d := d
		e.Schedule(d, func() { got = append(got, d) })
	}
	e.Run(0)
	want := []time.Duration{time.Nanosecond, 5 * time.Microsecond, time.Second,
		30 * time.Minute, time.Hour, 24 * time.Hour}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// TestCalendarResizeChurn pushes the queue through several grow/shrink
// cycles and checks global ordering plus the pending count at every step.
func TestCalendarResizeChurn(t *testing.T) {
	e := NewEngine()
	rng := xrand.New(11, 0xc0ffee)
	const n = 50_000
	for i := 0; i < n; i++ {
		e.Schedule(time.Duration(rng.IntN(1_000_000))*time.Nanosecond, func() {})
	}
	if e.Pending() != n {
		t.Fatalf("pending %d, want %d", e.Pending(), n)
	}
	last := time.Duration(-1)
	for e.Step() {
		if e.Now() < last {
			t.Fatalf("clock went backwards: %v after %v", e.Now(), last)
		}
		last = e.Now()
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d after drain", e.Pending())
	}
	// Refill after a full drain: the cursor must re-seek cleanly.
	e.Schedule(time.Millisecond, func() {})
	if n := e.Run(0); n != 1 {
		t.Fatalf("post-drain refill ran %d events", n)
	}
}

// benchEngineChurn measures the classic hold model: N pending events, each
// pop schedules a successor at a fresh pseudo-random offset, so the queue
// holds N events throughout — the steady state of an N-endpoint simulation.
// All N chains share ONE self-rescheduling closure over one xorshift64
// stream: the timed region allocates nothing, every timestamp is distinct
// (a shared delay table indexed with a common stride had made thousands of
// chains byte-identical, collapsing them into single calendar buckets), and
// the callback stays L1-resident — per-chain closures would add a second
// random memory access per event that lands additively on both engines and
// compresses the reported ratio without measuring either scheduler.
func benchEngineChurn(b *testing.B, mk func() *Engine, n int) {
	b.ReportAllocs()
	e := mk()
	s := xrand.New(1, 99).Uint64() | 1
	next := func() time.Duration {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return time.Duration((s >> 32) * 2_000_000 >> 32)
	}
	var self func()
	self = func() { e.Schedule(next(), self) }
	for i := 0; i < n; i++ {
		e.Schedule(next(), self)
	}
	// Two full turnovers before the clock starts: the first revolutions after
	// the queue's final growth resize warm up bucket overflow capacity (a
	// one-time allocation transient), and steady state is the claim. The
	// forced collection clears any previous run's garbage, so a mark phase
	// it triggered cannot bill its write barriers to this engine.
	e.Run(2 * n)
	runtime.GC()
	b.ResetTimer()
	e.Run(b.N)
}

func BenchmarkEngineHeapN1e2(b *testing.B)     { benchEngineChurn(b, NewHeapEngine, 100) }
func BenchmarkEngineHeapN1e4(b *testing.B)     { benchEngineChurn(b, NewHeapEngine, 10_000) }
func BenchmarkEngineHeapN1e5(b *testing.B)     { benchEngineChurn(b, NewHeapEngine, 100_000) }
func BenchmarkEngineCalendarN1e2(b *testing.B) { benchEngineChurn(b, NewEngine, 100) }
func BenchmarkEngineCalendarN1e4(b *testing.B) { benchEngineChurn(b, NewEngine, 10_000) }
func BenchmarkEngineCalendarN1e5(b *testing.B) { benchEngineChurn(b, NewEngine, 100_000) }
