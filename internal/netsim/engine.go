// Package netsim is a small discrete-event network simulator used for the
// paper's timing arguments (Figure 2): classical messages crossing links
// incur speed-of-light propagation delay, while decisions backed by
// pre-shared entangled qubits complete locally. The engine is deterministic:
// identical schedules replay identically.
package netsim

import (
	"container/heap"
	"fmt"
	"time"
)

// Engine is a discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	stopped bool
}

type event struct {
	at  time.Duration
	seq uint64 // FIFO tie-break for simultaneous events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event   { return h[0] }

// Now returns the current simulated time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.events.Len() }

// Schedule queues fn to run delay after the current simulated time.
// Negative delays panic: the simulator enforces causality.
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("netsim: scheduling into the past (delay %v)", delay))
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn at an absolute simulated time, which must not precede
// the current time.
func (e *Engine) ScheduleAt(at time.Duration, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("netsim: scheduling into the past (at %v, now %v)", at, e.now))
	}
	heap.Push(&e.events, event{at: at, seq: e.seq, fn: fn})
	e.seq++
}

// Step executes the next event, advancing the clock. It returns false when
// no events remain.
func (e *Engine) Step() bool {
	if e.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	if ev.at < e.now {
		panic("netsim: causality violation — event timestamp before current time")
	}
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until none remain or Stop is called. maxEvents bounds
// runaway simulations (0 means no bound).
func (e *Engine) Run(maxEvents int) int {
	e.stopped = false
	n := 0
	for !e.stopped && e.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}

// RunUntil executes events with timestamps ≤ t, then sets the clock to t.
func (e *Engine) RunUntil(t time.Duration) {
	e.stopped = false
	for !e.stopped && e.events.Len() > 0 && e.events.peek().at <= t {
		e.Step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// Stop halts Run/RunUntil after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Every schedules fn at now+interval, then repeatedly every interval, until
// the returned cancel function is called. Used for entangled-pair sources
// emitting at a fixed rate.
func (e *Engine) Every(interval time.Duration, fn func()) (cancel func()) {
	if interval <= 0 {
		panic("netsim: Every needs a positive interval")
	}
	active := true
	var tick func()
	tick = func() {
		if !active {
			return
		}
		fn()
		if active {
			e.Schedule(interval, tick)
		}
	}
	e.Schedule(interval, tick)
	return func() { active = false }
}
