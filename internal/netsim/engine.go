// Package netsim is a small discrete-event network simulator used for the
// paper's timing arguments (Figure 2): classical messages crossing links
// incur speed-of-light propagation delay, while decisions backed by
// pre-shared entangled qubits complete locally. The engine is deterministic:
// identical schedules replay identically.
//
// Two interchangeable schedulers sit behind the Engine API: the default
// calendar queue (O(1) amortized, built for 10⁵–10⁶ pending events) and the
// original binary heap (retained as the differential-test oracle and the
// baseline the scale benchmarks compare against). Both order events by
// (at, seq), so the pop sequence — and therefore every simulation result —
// is byte-identical whichever scheduler runs it.
package netsim

import (
	"container/heap"
	"fmt"
	"time"
)

// Engine is a discrete-event scheduler. The zero value is ready to use and
// runs on the calendar-queue scheduler; NewHeapEngine selects the binary
// heap.
type Engine struct {
	now     time.Duration
	sched   scheduler
	cal     *calendarQueue // non-nil iff sched is the calendar queue: devirtualized hot path
	seq     uint64
	stopped bool
}

// NewEngine returns an engine on the default calendar-queue scheduler
// (equivalent to a zero-value Engine, spelled out for symmetry).
func NewEngine() *Engine { return &Engine{} }

// NewHeapEngine returns an engine on the original binary-heap scheduler.
// It exists for differential tests and scheduler benchmarks; results are
// identical to the default engine's, only the time complexity differs.
func NewHeapEngine() *Engine { return &Engine{sched: new(eventHeap)} }

type event struct {
	at  time.Duration
	seq uint64 // FIFO tie-break for simultaneous events
	fn  func()
}

// less is the engine-wide total order on events: time first, scheduling
// sequence second. seq is unique, so the order has no further ties.
func (e event) less(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// scheduler is the priority-queue contract both engines implement: push
// accepts any event at or after the last popped time, pop returns events in
// (at, seq) order, and peekAt exposes the next timestamp without dequeuing.
type scheduler interface {
	push(event)
	pop() (event, bool)
	peekAt() (time.Duration, bool)
	len() int
}

type eventHeap []event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].less(h[j]) }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

func (h *eventHeap) push(e event) { heap.Push(h, e) }
func (h *eventHeap) pop() (event, bool) {
	if len(*h) == 0 {
		return event{}, false
	}
	return heap.Pop(h).(event), true
}
func (h *eventHeap) peekAt() (time.Duration, bool) {
	if len(*h) == 0 {
		return 0, false
	}
	return (*h)[0].at, true
}
func (h *eventHeap) len() int { return len(*h) }

// scheduler returns the engine's event queue, installing the default
// calendar queue on first use so the zero value stays ready.
func (e *Engine) scheduler() scheduler {
	if e.sched == nil {
		e.cal = newCalendarQueue()
		e.sched = e.cal
	}
	return e.sched
}

// Now returns the current simulated time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int {
	if e.sched == nil {
		return 0
	}
	return e.sched.len()
}

// Schedule queues fn to run delay after the current simulated time.
// Negative delays panic: the simulator enforces causality.
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("netsim: scheduling into the past (delay %v)", delay))
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn at an absolute simulated time, which must not precede
// the current time.
func (e *Engine) ScheduleAt(at time.Duration, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("netsim: scheduling into the past (at %v, now %v)", at, e.now))
	}
	ev := event{at: at, seq: e.seq, fn: fn}
	e.seq++
	// Static dispatch for the default scheduler: the push/pop pair runs once
	// per simulated event, and the interface call is measurable at 10⁵+
	// events per simulated second.
	if e.cal != nil {
		e.cal.push(ev)
		return
	}
	e.scheduler().push(ev)
}

// Step executes the next event, advancing the clock. It returns false when
// no events remain.
func (e *Engine) Step() bool {
	var ev event
	var ok bool
	if e.cal != nil {
		ev, ok = e.cal.pop()
	} else {
		ev, ok = e.scheduler().pop()
	}
	if !ok {
		return false
	}
	if ev.at < e.now {
		panic("netsim: causality violation — event timestamp before current time")
	}
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until none remain or Stop is called. maxEvents bounds
// runaway simulations (0 means no bound).
func (e *Engine) Run(maxEvents int) int {
	e.stopped = false
	n := 0
	for !e.stopped && e.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}

// RunUntil executes events with timestamps ≤ t, then sets the clock to t.
func (e *Engine) RunUntil(t time.Duration) {
	e.stopped = false
	for !e.stopped {
		at, ok := e.scheduler().peekAt()
		if !ok || at > t {
			break
		}
		e.Step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// Stop halts Run/RunUntil after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Every schedules fn at now+interval, then repeatedly every interval, until
// the returned cancel function is called. Used for entangled-pair sources
// emitting at a fixed rate.
func (e *Engine) Every(interval time.Duration, fn func()) (cancel func()) {
	if interval <= 0 {
		panic("netsim: Every needs a positive interval")
	}
	active := true
	var tick func()
	tick = func() {
		if !active {
			return
		}
		fn()
		if active {
			e.Schedule(interval, tick)
		}
	}
	e.Schedule(interval, tick)
	return func() { active = false }
}
