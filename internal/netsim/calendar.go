package netsim

import (
	"math/bits"
	"time"
)

// calBucket is one calendar day. The first calInline events live in a fixed
// array right next to the count, so the common push/pop touches a single
// 128-byte bucket record (one or two cache lines) instead of chasing a slice
// header to a separately-allocated backing array — at 10⁵ pending events the
// bucket access pattern is effectively random, and that saved miss is most
// of the scheduler's cost. Days with more than calInline events (rare when
// the resize policy holds occupancy near calWidthSpread) spill into the
// overflow slice.
type calBucket struct {
	n   int32 // events in inl
	inl [calInline]event
	ovf []event
}

const calInline = 4

// calendarQueue is a calendar-queue (bucketed ladder) event scheduler
// (R. Brown, CACM 1988): pending events hash into time buckets of a fixed
// width, the dequeue cursor walks the buckets like days on a calendar, and
// a resize policy keeps the bucket count proportional to the number of
// pending events. With ~1 event per bucket both enqueue and dequeue are
// O(1) amortized, against the binary heap's O(log n) — at 10⁵–10⁶ pending
// events (one per simulated endpoint) that constant factor is the
// difference between minutes and hours for a full sweep.
//
// The bucket width is always a power-of-two number of nanoseconds and the
// bucket count a power of two, so the timestamp→bucket map is a shift and a
// mask — int64 division is ~30 cycles on current x86 and would otherwise
// dominate the push path.
//
// Ordering is EXACTLY the heap engine's: events are totally ordered by
// (at, seq), so simultaneous events pop in scheduling (FIFO) order. Two
// events with equal timestamps always land in the same bucket, and the
// bucket scan breaks ties on seq — the differential test in
// calendar_test.go replays identical streams through both schedulers and
// requires identical pop sequences.
type calendarQueue struct {
	buckets []calBucket
	shift   uint          // bucket width = 1<<shift nanoseconds
	mask    int           // len(buckets)-1 (bucket count is a power of two)
	cur     int           // bucket the dequeue cursor is standing on
	curEnd  time.Duration // exclusive end of cur's current-year window
	n       int           // pending events

	// Cached location of the minimum event, so a peekAt immediately followed
	// by pop (the RunUntil loop) scans the calendar once, not twice. A pop or
	// resize invalidates it; a push keeps it when the new event cannot beat
	// the cached minimum (pushes carry a fresh, larger seq, so at alone
	// decides — the common case, since callbacks schedule into the future).
	minBi, minSi int
	minAt        time.Duration
	minOK        bool
}

const (
	calMinBuckets = 16
	calMaxBuckets = 1 << 21
	// calWidthSpread multiplies the mean inter-event gap when a resize
	// re-estimates the bucket width: a bucket then holds a couple of events,
	// keeping scans short (and inside the inline array) without leaving most
	// buckets empty.
	calWidthSpread = 2
)

func newCalendarQueue() *calendarQueue {
	return &calendarQueue{
		buckets: make([]calBucket, calMinBuckets),
		mask:    calMinBuckets - 1,
		shift:   20, // 2²⁰ns ≈ 1.05ms, rescaled by the first resize
	}
}

// width returns the bucket time width.
func (c *calendarQueue) width() time.Duration { return 1 << c.shift }

// bucketOf maps an absolute timestamp to its bucket index.
func (c *calendarQueue) bucketOf(at time.Duration) int {
	return int(at>>c.shift) & c.mask
}

// seek points the cursor at the bucket-year window containing at.
func (c *calendarQueue) seek(at time.Duration) {
	c.cur = c.bucketOf(at)
	c.curEnd = (at>>c.shift + 1) << c.shift
}

func (c *calendarQueue) len() int { return c.n }

func (c *calendarQueue) push(ev event) {
	if c.n == 0 || ev.at < c.curEnd-c.width() {
		// Keep the cursor invariant — the current window never starts after
		// the earliest pending event. An empty queue has no invariant yet,
		// and a push into a window the cursor has already passed (possible
		// after the empty-queue seek jumped ahead) must pull it back, or
		// findMin would skip the new event for a whole calendar year.
		c.seek(ev.at)
	}
	b := &c.buckets[c.bucketOf(ev.at)]
	if b.n < calInline {
		b.inl[b.n] = ev
		b.n++
	} else {
		if b.ovf == nil {
			// First spill allocates a full size class up front: letting append
			// ratchet 1→2→4→8 re-allocates every time a revolution sets a new
			// occupancy record for the bucket, a GC drip that decays too slowly
			// to ever leave the steady state.
			b.ovf = make([]event, 0, 8)
		}
		b.ovf = append(b.ovf, ev)
	}
	c.n++
	if ev.at < c.minAt {
		// Appends never move existing slots, so the cached location stays
		// valid unless the new event sorts first.
		c.minOK = false
	}
	if c.n > 2*len(c.buckets) && len(c.buckets) < calMaxBuckets {
		c.resize(2 * len(c.buckets))
	}
}

// scanBucket returns the slot of b's least event strictly before limit, or
// -1. Slots index the inline array first, then the overflow.
func scanBucket(b *calBucket, limit time.Duration) int {
	best := -1
	var bestAt time.Duration
	var bestSeq uint64
	bn := int(b.n)
	for i := 0; i < bn; i++ {
		at, seq := b.inl[i].at, b.inl[i].seq
		if at >= limit {
			continue
		}
		if best < 0 || at < bestAt || (at == bestAt && seq < bestSeq) {
			best, bestAt, bestSeq = i, at, seq
		}
	}
	for i := range b.ovf {
		at, seq := b.ovf[i].at, b.ovf[i].seq
		if at >= limit {
			continue
		}
		if best < 0 || at < bestAt || (at == bestAt && seq < bestSeq) {
			best, bestAt, bestSeq = calInline+i, at, seq
		}
	}
	return best
}

// at returns the event in slot si (inline first, then overflow).
func (b *calBucket) at(si int) event {
	if si < calInline {
		return b.inl[si]
	}
	return b.ovf[si-calInline]
}

// remove deletes slot si by swap-remove; order within a bucket is irrelevant
// (the scan re-derives it). Only the fn pointer of a vacated slot is
// cleared — that is all the GC can see, and zeroing the full 24-byte event
// was a visible slice of the pop path.
func (b *calBucket) remove(si int) {
	if si >= calInline { // swap-remove within the overflow
		last := len(b.ovf) - 1
		b.ovf[si-calInline] = b.ovf[last]
		b.ovf[last].fn = nil
		b.ovf = b.ovf[:last]
		return
	}
	if last := len(b.ovf) - 1; last >= 0 {
		// Backfill the inline hole from the overflow so inline stays dense.
		b.inl[si] = b.ovf[last]
		b.ovf[last].fn = nil
		b.ovf = b.ovf[:last]
		return
	}
	b.n--
	b.inl[si] = b.inl[b.n]
	b.inl[b.n].fn = nil
}

// findMin locates the next event in (at, seq) order, advancing the cursor
// to its bucket window, and returns its (bucket, slot) position. It must
// only be called with n > 0.
func (c *calendarQueue) findMin() (int, int) {
	if c.minOK {
		return c.minBi, c.minSi
	}
	for hop := 0; hop <= len(c.buckets); hop++ {
		// Only this year's events count: a bucket also holds events one or
		// more whole calendar revolutions in the future, which the curEnd
		// limit excludes.
		if si := scanBucket(&c.buckets[c.cur], c.curEnd); si >= 0 {
			c.minBi, c.minSi, c.minOK = c.cur, si, true
			c.minAt = c.buckets[c.cur].at(si).at
			return c.cur, si
		}
		c.cur = (c.cur + 1) & c.mask
		c.curEnd += c.width()
	}
	// A full revolution found nothing: the pending events are more than a
	// calendar year ahead (sparse far-future schedule). Fall back to a
	// direct scan for the global minimum and jump the cursor to it.
	minBucket, minSlot := -1, -1
	var minEv event
	for bi := range c.buckets {
		si := scanBucket(&c.buckets[bi], 1<<62)
		if si < 0 {
			continue
		}
		if ev := c.buckets[bi].at(si); minBucket < 0 || ev.less(minEv) {
			minBucket, minSlot, minEv = bi, si, ev
		}
	}
	c.seek(minEv.at)
	c.minBi, c.minSi, c.minOK = minBucket, minSlot, true
	c.minAt = minEv.at
	return minBucket, minSlot
}

func (c *calendarQueue) pop() (event, bool) {
	if c.n == 0 {
		return event{}, false
	}
	bi, si := c.findMin()
	b := &c.buckets[bi]
	ev := b.at(si)
	b.remove(si)
	c.n--
	c.minOK = false
	if c.n < len(c.buckets)/4 && len(c.buckets) > calMinBuckets {
		c.resize(len(c.buckets) / 2)
	}
	return ev, true
}

func (c *calendarQueue) peekAt() (time.Duration, bool) {
	if c.n == 0 {
		return 0, false
	}
	bi, si := c.findMin()
	return c.buckets[bi].at(si).at, true
}

// resize re-buckets every pending event into nb buckets, re-estimating the
// bucket width from the pending events' time span so that average bucket
// occupancy stays near calWidthSpread. Amortized against the pushes/pops
// that triggered it, this keeps both operations O(1).
func (c *calendarQueue) resize(nb int) {
	var minAt, maxAt time.Duration
	first := true
	each := func(fn func(event)) {
		for bi := range c.buckets {
			b := &c.buckets[bi]
			for i := 0; i < int(b.n); i++ {
				fn(b.inl[i])
			}
			for _, ev := range b.ovf {
				fn(ev)
			}
		}
	}
	each(func(ev event) {
		if first || ev.at < minAt {
			minAt = ev.at
		}
		if first || ev.at > maxAt {
			maxAt = ev.at
		}
		first = false
	})
	if c.n > 0 {
		if w := (maxAt - minAt) / time.Duration(c.n) * calWidthSpread; w > 0 {
			// Round the ideal width to the NEAREST power of two (boundary at
			// ×1.5): occupancy stays within ~1.5× of target either way, and
			// the bucket map stays shift-and-mask.
			s := uint(bits.Len64(uint64(w - 1)))
			if s > 0 && time.Duration(1)<<s > w+w/2 {
				s--
			}
			c.shift = s
		}
		// span == 0 (all events simultaneous) keeps the previous width: any
		// width is optimal when everything shares one bucket.
	}
	old := c.buckets
	c.buckets = make([]calBucket, nb)
	c.mask = nb - 1
	for bi := range old {
		b := &old[bi]
		for i := 0; i < int(b.n); i++ {
			c.reinsert(b.inl[i])
		}
		for _, ev := range b.ovf {
			c.reinsert(ev)
		}
	}
	c.minOK = false
	if c.n > 0 {
		c.seek(minAt)
	} else {
		c.seek(0)
	}
}

// reinsert places an event during resize without touching counts or policy.
func (c *calendarQueue) reinsert(ev event) {
	b := &c.buckets[c.bucketOf(ev.at)]
	if b.n < calInline {
		b.inl[b.n] = ev
		b.n++
	} else {
		if b.ovf == nil {
			b.ovf = make([]event, 0, 8)
		}
		b.ovf = append(b.ovf, ev)
	}
}
