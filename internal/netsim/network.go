package netsim

import (
	"fmt"
	"time"
)

// SpeedOfLightFiber is the propagation speed in optical fiber (~2/3 c),
// the figure that makes "faster-than-light correlation" a concrete win:
// a 100 km fiber hop costs ~500 µs one way.
const SpeedOfLightFiber = 2.0e8 // meters per second

// PropagationDelay converts a fiber distance to a one-way delay.
func PropagationDelay(distanceMeters float64) time.Duration {
	if distanceMeters < 0 {
		panic("netsim: negative distance")
	}
	return time.Duration(distanceMeters / SpeedOfLightFiber * float64(time.Second))
}

// NodeID identifies a node in a Network.
type NodeID int

// Message is a classical message in flight between nodes.
type Message struct {
	From, To    NodeID
	Payload     any
	SentAt      time.Duration
	DeliveredAt time.Duration
}

// Handler consumes a delivered message at a node.
type Handler func(net *Network, msg Message)

// Network is a set of nodes joined by fixed-delay links on one Engine.
type Network struct {
	Engine *Engine

	handlers map[NodeID]Handler
	delays   map[[2]NodeID]time.Duration
}

// NewNetwork creates an empty network on the engine.
func NewNetwork(e *Engine) *Network {
	return &Network{
		Engine:   e,
		handlers: make(map[NodeID]Handler),
		delays:   make(map[[2]NodeID]time.Duration),
	}
}

// AddNode registers a node and its message handler.
func (n *Network) AddNode(id NodeID, h Handler) {
	if _, dup := n.handlers[id]; dup {
		panic(fmt.Sprintf("netsim: duplicate node %d", id))
	}
	n.handlers[id] = h
}

// Connect installs a bidirectional link with the given one-way delay.
func (n *Network) Connect(a, b NodeID, delay time.Duration) {
	if delay < 0 {
		panic("netsim: negative link delay")
	}
	n.delays[linkKey(a, b)] = delay
}

// ConnectDistance installs a link with delay derived from fiber distance.
func (n *Network) ConnectDistance(a, b NodeID, meters float64) {
	n.Connect(a, b, PropagationDelay(meters))
}

// LinkDelay returns the one-way delay between two connected nodes.
func (n *Network) LinkDelay(a, b NodeID) (time.Duration, bool) {
	d, ok := n.delays[linkKey(a, b)]
	return d, ok
}

// Send schedules delivery of a message across the link; the destination
// handler runs after exactly the link's propagation delay. It panics if the
// nodes are not connected — silent drops would corrupt timing experiments.
func (n *Network) Send(from, to NodeID, payload any) {
	d, ok := n.delays[linkKey(from, to)]
	if !ok {
		panic(fmt.Sprintf("netsim: no link %d–%d", from, to))
	}
	h, ok := n.handlers[to]
	if !ok {
		panic(fmt.Sprintf("netsim: unknown destination node %d", to))
	}
	msg := Message{From: from, To: to, Payload: payload, SentAt: n.Engine.Now()}
	n.Engine.Schedule(d, func() {
		msg.DeliveredAt = n.Engine.Now()
		h(n, msg)
	})
}

func linkKey(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}
