package netsim

import (
	"testing"
	"time"
)

func TestScheduleAndRunOrder(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(3*time.Millisecond, func() { order = append(order, 3) })
	e.Schedule(1*time.Millisecond, func() { order = append(order, 1) })
	e.Schedule(2*time.Millisecond, func() { order = append(order, 2) })
	e.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order %v", order)
	}
	if e.Now() != 3*time.Millisecond {
		t.Fatalf("final clock %v", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestClockMonotonic(t *testing.T) {
	var e Engine
	var last time.Duration
	for i := 0; i < 50; i++ {
		d := time.Duration(50-i) * time.Millisecond
		e.Schedule(d, func() {
			if e.Now() < last {
				t.Fatal("clock went backwards")
			}
			last = e.Now()
		})
	}
	e.Run(0)
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	var hits int
	e.Schedule(time.Millisecond, func() {
		hits++
		e.Schedule(time.Millisecond, func() {
			hits++
		})
	})
	e.Run(0)
	if hits != 2 {
		t.Fatalf("hits = %d", hits)
	}
	if e.Now() != 2*time.Millisecond {
		t.Fatalf("clock %v", e.Now())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Schedule(-time.Millisecond, func() {})
}

func TestScheduleAtPastPanics(t *testing.T) {
	var e Engine
	e.Schedule(5*time.Millisecond, func() {})
	e.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.ScheduleAt(time.Millisecond, func() {})
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var hits int
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() { hits++ })
	}
	e.RunUntil(5 * time.Millisecond)
	if hits != 5 {
		t.Fatalf("hits = %d, want 5", hits)
	}
	if e.Now() != 5*time.Millisecond {
		t.Fatalf("clock %v", e.Now())
	}
	if e.Pending() != 5 {
		t.Fatalf("pending %d", e.Pending())
	}
	// RunUntil advances the clock even with no events in range.
	e.RunUntil(5 * time.Millisecond) // no-op at same time
	e.Run(0)
	if hits != 10 {
		t.Fatalf("hits = %d", hits)
	}
}

func TestRunMaxEvents(t *testing.T) {
	var e Engine
	var tick func()
	count := 0
	tick = func() {
		count++
		e.Schedule(time.Millisecond, tick) // would run forever
	}
	e.Schedule(time.Millisecond, tick)
	n := e.Run(100)
	if n != 100 || count != 100 {
		t.Fatalf("ran %d events, counted %d", n, count)
	}
}

func TestStop(t *testing.T) {
	var e Engine
	hits := 0
	e.Schedule(time.Millisecond, func() { hits++; e.Stop() })
	e.Schedule(2*time.Millisecond, func() { hits++ })
	e.Run(0)
	if hits != 1 {
		t.Fatalf("Stop did not halt the run: hits=%d", hits)
	}
	e.Run(0) // resumes
	if hits != 2 {
		t.Fatalf("resume failed: hits=%d", hits)
	}
}

func TestEvery(t *testing.T) {
	var e Engine
	count := 0
	cancel := e.Every(time.Millisecond, func() {
		count++
		if count == 7 {
			e.Stop()
		}
	})
	e.Run(0)
	if count != 7 {
		t.Fatalf("ticks = %d", count)
	}
	if e.Now() != 7*time.Millisecond {
		t.Fatalf("clock %v", e.Now())
	}
	cancel()
	e.Run(0)
	if count != 7 {
		t.Fatal("cancel did not stop the ticker")
	}
}

func TestEveryCancelFromTick(t *testing.T) {
	var e Engine
	count := 0
	var cancel func()
	cancel = e.Every(time.Millisecond, func() {
		count++
		if count == 3 {
			cancel()
		}
	})
	e.Run(0)
	if count != 3 {
		t.Fatalf("ticks after self-cancel = %d", count)
	}
}

func TestEveryInvalidIntervalPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Every(0, func() {})
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var e Engine
		for j := 0; j < 100; j++ {
			e.Schedule(time.Duration(j)*time.Microsecond, func() {})
		}
		e.Run(0)
	}
}
