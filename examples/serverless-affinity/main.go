// Serverless affinity routing: the paper cites Palette (EuroSys '23)
// locality hints for serverless functions. Here four function classes have
// an affinity graph — some share warm containers and in-memory caches
// (colocate edges), others contend for memory bandwidth (exclusive edges).
// The graph defines an XOR game; the library computes its classical and
// quantum values and plays the optimal quantum strategy.
//
//	go run ./examples/serverless-affinity
package main

import (
	"fmt"

	ftlq "repro"
	"repro/internal/experiments"
)

func main() {
	// The affinity graph and class names are shared with experiment E19,
	// which also runs this game's optimal strategies through the queueing
	// simulator. Function classes: 0 thumbnailer, 1 transcoder,
	// 2 ML-inference, 3 report-generator.
	names := experiments.ServerlessAffinityNames()
	n := len(names)
	game := experiments.ServerlessAffinityGame()

	fmt.Println("affinity graph (two routers receive function invocations and must")
	fmt.Println("pick the same or different workers with zero communication):")
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			rel := "colocate "
			if game.Parity[a][b] == 1 {
				rel = "exclusive"
			}
			fmt.Printf("  %-12s – %-12s %s\n", names[a], names[b], rel)
		}
	}

	rng := ftlq.Rand(11)
	c := game.ClassicalValue()
	q := game.QuantumValue(rng)
	fmt.Printf("\nbest classical preference-satisfaction rate: %.4f\n", c.Value)
	fmt.Printf("quantum rate with shared entanglement:       %.4f\n", q.Value)
	if q.Bias > c.Bias+1e-7 {
		fmt.Printf("→ quantum advantage: +%.2f percentage points, no messages needed\n",
			100*(q.Value-c.Value))
	} else {
		fmt.Println("→ this particular graph is classically satisfiable; no advantage")
	}

	// Play the optimal strategy and verify empirically.
	sampler := q.QuantumSampler(1.0)
	wins := 0
	const rounds = 200_000
	for i := 0; i < rounds; i++ {
		x, y := game.SampleInput(rng)
		a, b := sampler.Sample(x, y, rng)
		if game.Wins(x, y, a, b) {
			wins++
		}
	}
	fmt.Printf("\nempirical rate over %d routed invocation pairs: %.4f\n",
		rounds, float64(wins)/rounds)
	fmt.Println("(sampled from the exact Born-rule correlations of the optimal measurement)")
}
