// Quickstart: share entanglement between two parties, play the colocation
// CHSH game, and watch the win rate beat the best possible classical
// zero-communication strategy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	ftlq "repro"
)

func main() {
	// The coordination objective: two load balancers should pick the SAME
	// server exactly when both hold colocation-loving (type-C) tasks.
	game := ftlq.NewColocationCHSH()

	// An idealized entanglement supply: one Bell pair per decision at 98%
	// visibility (a realistic fresh-from-the-SPDC-source figure).
	session, err := ftlq.NewSession(ftlq.SessionConfig{
		Game:     game,
		Supplier: ftlq.PerfectSupplier{Visibility: 0.98},
		QNIC:     ftlq.DefaultQNIC(),
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("game: %s\n", game.Name)
	fmt.Printf("best classical win rate (proved optimal): %.4f\n", session.ClassicalValue())
	fmt.Printf("quantum win rate (Tsirelson optimal):     %.4f\n", session.QuantumValue())
	fmt.Printf("critical visibility:                      %.4f\n\n", session.CriticalVis())

	// Play 100k coordination rounds, one microsecond apart.
	st := session.PlayReferee(100_000, 0, time.Microsecond)

	lo, hi := st.Wins.Wilson95()
	fmt.Printf("rounds played:     %d (quantum: %d, fallback: %d)\n",
		st.Rounds, st.QuantumRounds, st.FallbackRounds)
	fmt.Printf("measured win rate: %.4f  [%.4f, %.4f]\n", st.Wins.Rate(), lo, hi)
	fmt.Printf("mean visibility:   %.4f\n\n", st.Visibility.Mean())

	if lo > session.ClassicalValue() {
		fmt.Println("→ the measured rate exceeds the classical optimum with 95% confidence:")
		fmt.Println("  the two parties are coordinating better than ANY classical")
		fmt.Println("  zero-communication scheme could — with zero messages exchanged.")
	} else {
		fmt.Println("→ not significantly above classical (noise too high or too few rounds)")
	}
}
