// ECMP routing: the paper's negative result (§4.2). Switches spraying
// packets across equal-cost paths CANNOT benefit from entanglement, because
// only an unknown subset of switches is active and a switch's measurement
// cannot depend on who else has traffic. This example shows quantum
// candidates matching — never beating — the best classical scheme.
//
//	go run ./examples/ecmp-routing
package main

import (
	"fmt"

	ftlq "repro"
	"repro/internal/ecmp"
	"repro/internal/xrand"
)

func main() {
	cfg := ftlq.ECMPConfig{
		NumSwitches: 8,
		NumPaths:    2,
		ActiveK:     2,
		Rounds:      100_000,
		Seed:        13,
	}
	fmt.Printf("%d top-of-rack switches, %d equal-cost uplinks, %d active per window\n\n",
		cfg.NumSwitches, cfg.NumPaths, cfg.ActiveK)

	fmt.Println("strategy                        E[colliding pairs]")
	for _, s := range []ftlq.PathStrategy{
		ecmp.IndependentRandom{},                   // production ECMP hashing
		ecmp.SharedPermutation{},                   // best classical, shared randomness
		ecmp.PairwiseAntiCorrelated{Visibility: 1}, // Bell pairs between switch pairs
	} {
		r := ftlq.RunECMP(cfg, s)
		fmt.Printf("%-30s  %.4f ± %.4f\n", r.Strategy, r.Collisions.Mean(), r.Collisions.CI95())
	}

	best := ftlq.ECMPBestClassical(cfg.NumSwitches, cfg.NumPaths, cfg.ActiveK)
	fmt.Printf("\nproved classical optimum: %.4f\n", best)

	rng := xrand.New(13, 1)
	q := ecmp.QuantumSearchBestCollisions(cfg.NumSwitches, cfg.ActiveK, 300, rng)
	fmt.Printf("best of 300 arbitrary quantum strategies: %.4f (pigeonhole bound %.4f)\n",
		q, ecmp.PigeonholeLowerBound(cfg.NumSwitches, cfg.NumPaths, cfg.ActiveK))

	rep := ecmp.StandardReductionDemo()
	fmt.Printf("\nreduction demo (GHZ & W states): marginal shift %.1e, mixture error %.1e\n",
		rep.MaxMarginalShift, rep.MixtureError)

	fmt.Println(`
why entanglement cannot help here (paper §4.2):
  1. a switch cannot know which others are active, so its measurement basis
     is fixed — there is effectively no "input" to play a non-local game on;
  2. by no-signaling, an inactive party may as well have measured already,
     collapsing any global entanglement to pairwise mixtures (demonstrated
     above at machine precision);
  3. with no inputs, every achievable outcome distribution is classical
     (shared randomness), so the pigeonhole bound binds quantum too.
contrast with application-level load balancing, where every party's output
matters on every input — that asymmetry is the paper's "lesson learned".`)
}
