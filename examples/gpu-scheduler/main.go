// GPU scheduler: the paper's introduction motivates quantum-correlated load
// balancing with GPUs — "map requests referencing the same texture or
// memory region to the same Streaming Multiprocessor (SM) to maximize data
// locality, while distributing unrelated requests across SMs."
//
// This example runs the Figure 4 queueing simulation dressed in that story:
// dispatchers route kernels to SMs; kernels touching a shared texture
// (type-C) batch efficiently on one SM, while exclusive kernels (type-E)
// want an SM to themselves.
//
//	go run ./examples/gpu-scheduler
package main

import (
	"fmt"

	ftlq "repro"
	"repro/internal/experiments"
)

func main() {
	fmt.Println("GPU kernel dispatch: 64 dispatchers → SMs, texture-sharing kernels")
	fmt.Println("want colocation, exclusive kernels want isolation")
	fmt.Println()
	fmt.Printf("%-10s %-22s %-22s %-10s\n", "SMs", "random dispatch", "entangled dispatch", "speedup")

	// The scenario definition is shared with experiment E19, which tables
	// the knee of this sweep; the example runs the full SM range at
	// publication slot counts.
	for _, sms := range experiments.GPUSchedulerSMs() {
		cfg := experiments.GPUSchedulerConfig(sms, 2000, 12000)
		classical := ftlq.RunLB(cfg, ftlq.NewRandomLB())
		quantum := ftlq.RunLB(cfg, ftlq.NewQuantumLB(0.95, 7))

		speedup := classical.Delay.Mean() / quantum.Delay.Mean()
		fmt.Printf("%-10d delay %6.2f slots     delay %6.2f slots     %.2fx\n",
			sms, classical.Delay.Mean(), quantum.Delay.Mean(), speedup)
	}

	fmt.Println()
	fmt.Println("entangled dispatchers colocate texture-sharing kernels without any")
	fmt.Println("inter-dispatcher communication; the win grows as the SM pool shrinks")
	fmt.Println("toward saturation (the Figure 4 knee), exactly where schedulers hurt most")
}
