// Deployment planner: the full operational workflow an operator would run
// before turning on quantum-correlated load balancing, end to end through
// the public API:
//
//  1. CERTIFY the hardware — estimate the CHSH S-value of the delivered
//     pairs and recover the effective visibility;
//
//  2. PLAN — check the workload's affinity game actually has a quantum
//     advantage at that visibility (it needs V above the game's critical
//     visibility);
//
//  3. PREDICT — compute the expected preference-satisfaction rate;
//
//  4. DEPLOY — run a session against the live supply and compare.
//
//     go run ./examples/deployment-planner
package main

import (
	"fmt"
	"time"

	ftlq "repro"
)

func main() {
	rng := ftlq.Rand(77)

	// The hardware under test: simulated SPDC pairs at an unknown-to-the-
	// operator visibility (ground truth 0.88).
	const trueVisibility = 0.88
	device := ftlq.NewCHSH().QuantumValue(rng).QuantumSampler(trueVisibility)

	// ── 1. certify ──
	cert := ftlq.CertifyCHSH(device, 50_000, rng)
	estVis := cert.S / ftlq.STsirelsonBound
	fmt.Printf("1. certification: S = %.4f ± %.4f\n", cert.S, cert.SE)
	fmt.Printf("   violates classical bound (S > 2)?  %v\n", cert.ViolatesClassicalBound(3))
	fmt.Printf("   consistent with quantum (≤ 2√2)?   %v\n", cert.WithinTsirelson(3))
	fmt.Printf("   estimated visibility:              %.4f (truth: %.2f)\n\n", estVis, trueVisibility)
	if !cert.ViolatesClassicalBound(3) {
		fmt.Println("   → hardware failed certification; deploy the classical strategy")
		return
	}

	// ── 2. plan ──
	game := ftlq.NewColocationCHSH()
	c := game.ClassicalValue()
	q := game.QuantumValue(rng)
	critical := ftlq.CriticalVisibility(c.Value, q.Value)
	fmt.Printf("2. planning: game %q — classical %.4f, quantum %.4f\n", game.Name, c.Value, q.Value)
	fmt.Printf("   critical visibility %.4f; hardware at %.4f → margin %+.4f\n\n",
		critical, estVis, estVis-critical)
	if estVis <= critical {
		fmt.Println("   → hardware too noisy for this game; deploy classical")
		return
	}

	// ── 3. predict ──
	predicted := estVis*q.Value + (1-estVis)/2
	fmt.Printf("3. prediction: expected win rate %.4f (vs %.4f classical ceiling)\n\n",
		predicted, c.Value)

	// ── 4. deploy ──
	session, err := ftlq.NewSession(ftlq.SessionConfig{
		Game:     game,
		Supplier: ftlq.PerfectSupplier{Visibility: trueVisibility},
		QNIC:     ftlq.DefaultQNIC(),
		Seed:     78,
	})
	if err != nil {
		panic(err)
	}
	st := session.PlayReferee(200_000, 0, time.Microsecond)
	lo, hi := st.Wins.Wilson95()
	fmt.Printf("4. deployed: measured win rate %.4f [%.4f, %.4f] over %d rounds\n",
		st.Wins.Rate(), lo, hi, st.Rounds)

	if predicted >= lo && predicted <= hi {
		fmt.Println("\n→ measurement confirms the certification-based prediction:")
		fmt.Println("  the operator never needed to know any quantum mechanics —")
		fmt.Println("  certify, compare two numbers, deploy.")
	} else {
		fmt.Printf("\n→ prediction %.4f outside the measured interval — investigate hardware drift\n", predicted)
	}
}
