package ftlq

// Cross-module integration tests: each test exercises a full pipeline the
// way the cmd/ binaries do, at reduced scale, asserting the end-to-end
// invariants that individual package tests cannot see.

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ecmp"
	"repro/internal/entangle"
	"repro/internal/games"
	"repro/internal/loadbalance"
	"repro/internal/netsim"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// TestIntegrationSourceToSessionToGame wires the whole Figure 1 stack:
// SPDC source → DES distribution → QNIC pool → Session → game rounds, and
// checks the measured win rate against the session's own prediction.
func TestIntegrationSourceToSessionToGame(t *testing.T) {
	var engine netsim.Engine
	rng := xrand.New(200, 1)
	src := entangle.DefaultSource()
	pool := entangle.NewPool(entangle.DefaultQNIC(), 0)
	svc := entangle.StartService(&engine, src, pool, rng)

	session, err := core.NewSession(core.Config{
		Game:     games.NewColocationCHSH(),
		Supplier: pool,
		QNIC:     entangle.DefaultQNIC(),
		Seed:     200,
	})
	if err != nil {
		t.Fatal(err)
	}

	gameRng := xrand.New(201, 1)
	const rounds = 30000
	step := 20 * time.Microsecond // 5e4 req/s vs 1e5 pairs/s: well supplied
	now := time.Duration(0)
	for i := 0; i < rounds; i++ {
		now += step
		engine.RunUntil(now)
		x, y := games.NewColocationCHSH().SampleInput(gameRng)
		session.Round(engine.Now(), x, y)
	}
	svc.Stop()

	st := session.Stats()
	if st.QuantumRounds < int64(0.9*rounds) {
		t.Fatalf("only %d/%d rounds quantum despite oversupply", st.QuantumRounds, rounds)
	}
	frac := float64(st.QuantumRounds) / float64(st.Rounds)
	predicted := session.ExpectedWinRate(frac, st.Visibility.Mean())
	if math.Abs(st.Wins.Rate()-predicted) > 0.01 {
		t.Fatalf("measured win rate %v vs predicted %v", st.Wins.Rate(), predicted)
	}
	// Pool accounting is conservative: every quantum round consumed a pair,
	// and a few consumed pairs were rejected as sub-critical (measured and
	// discarded), so Consumed ≥ QuantumRounds.
	ps := pool.Stats()
	if ps.Consumed < st.QuantumRounds {
		t.Fatalf("pool consumed %d, session used %d", ps.Consumed, st.QuantumRounds)
	}
	if ps.Added < ps.Consumed {
		t.Fatal("consumed more pairs than were delivered")
	}
}

// TestIntegrationGameSolversAgree cross-validates every solver in the
// repository on the same random games: Burer–Monteiro SDP, rank-2 planar
// realization scored by the exact Born rule, and the see-saw iteration.
func TestIntegrationGameSolversAgree(t *testing.T) {
	rng := xrand.New(202, 1)
	for trial := 0; trial < 4; trial++ {
		g := games.RandomGraphXORGame(4, 0.5, rng)
		full := g.QuantumValue(rng).Value
		pr, q2 := g.PlanarRealize(rng)
		phys := pr.ExactValue(g, 1.0)
		seesaw := games.FromXOR(g).SeeSawQuantumValue(rng).Value

		if math.Abs(phys-q2.Value) > 1e-9 {
			t.Fatalf("planar physics %v != rank-2 vectors %v", phys, q2.Value)
		}
		// See-saw lives on a Bell pair (rank ≤ 2 correlations): it should
		// match the rank-2 value and never beat the full SDP.
		if math.Abs(seesaw-q2.Value) > 1e-4 {
			t.Fatalf("see-saw %v vs rank-2 %v", seesaw, q2.Value)
		}
		if seesaw > full+1e-6 {
			t.Fatalf("see-saw %v exceeds SDP %v", seesaw, full)
		}
	}
}

// TestIntegrationRepeaterFedLoadBalancing: pairs delivered over a repeater
// chain carry compounded visibility; the load balancer's colocation rate
// must match the closed form for that visibility.
func TestIntegrationRepeaterFedLoadBalancing(t *testing.T) {
	chain := entangle.RepeaterChain{
		Segments:   4,
		Source:     entangle.DefaultSource(),
		BSMSuccess: 0.5,
	}
	vis := chain.EndToEndVisibility() // 0.98^4 ≈ 0.922
	rng := xrand.New(203, 1)
	cfg := loadbalance.Config{
		NumBalancers: 40, NumServers: 40,
		Warmup: 200, Slots: 4000,
		Discipline: loadbalance.BatchCFirst,
		Workload:   workload.Bernoulli{PC: 0.5},
		Seed:       203,
	}
	s := loadbalance.NewQuantumPairedStrategy(vis, rng)
	loadbalance.Run(cfg, s)
	want := vis*0.8535533905932737 + (1-vis)/2
	if math.Abs(s.ColocationStats().Rate()-want) > 0.015 {
		t.Fatalf("colocation %v, closed form %v at chain visibility %v",
			s.ColocationStats().Rate(), want, vis)
	}
}

// TestIntegrationCertifyThenDeploy models the operational workflow: certify
// the hardware, recover its visibility from S, and use that estimate to
// predict load-balancer behavior.
func TestIntegrationCertifyThenDeploy(t *testing.T) {
	rng := xrand.New(204, 1)
	trueVis := 0.9
	g := games.NewCHSH()
	device := g.QuantumValue(rng).QuantumSampler(trueVis)

	cert := games.CertifyCHSH(device, 60000, rng)
	if !cert.ViolatesClassicalBound(3) {
		t.Fatal("device failed certification")
	}
	estVis := games.VisibilityFromS(cert.S)
	if math.Abs(estVis-trueVis) > 0.02 {
		t.Fatalf("estimated visibility %v, true %v", estVis, trueVis)
	}
	// Predict and verify the colocation rate at the estimated visibility.
	cfg := loadbalance.Config{
		NumBalancers: 40, NumServers: 40,
		Warmup: 100, Slots: 3000,
		Discipline: loadbalance.BatchCFirst,
		Workload:   workload.Bernoulli{PC: 0.5},
		Seed:       204,
	}
	s := loadbalance.NewQuantumPairedStrategy(trueVis, rng)
	loadbalance.Run(cfg, s)
	predicted := estVis*0.8535533905932737 + (1-estVis)/2
	if math.Abs(s.ColocationStats().Rate()-predicted) > 0.02 {
		t.Fatalf("colocation %v, certification-predicted %v", s.ColocationStats().Rate(), predicted)
	}
}

// TestIntegrationECMPVsLoadBalancingContrast is the paper's "lesson
// learned" as an executable assertion: the SAME entanglement resource that
// shifts the load-balancing knee gives exactly nothing for ECMP.
func TestIntegrationECMPVsLoadBalancingContrast(t *testing.T) {
	rng := xrand.New(205, 1)

	// Load balancing: quantum strictly beats the classical optimum (both
	// exactly computed).
	g := games.NewColocationCHSH()
	c := g.ClassicalValue()
	q := g.QuantumValue(rng)
	if q.Value-c.Value < 0.1 {
		t.Fatalf("load-balancing gap %v missing", q.Value-c.Value)
	}

	// ECMP: the quantum pairing exactly ties the classical pairing, and the
	// classical optimum binds both.
	cfg := ecmp.Config{NumSwitches: 6, NumPaths: 2, ActiveK: 2, Rounds: 60000, Seed: 205}
	bell := ecmp.Run(cfg, ecmp.PairwiseAntiCorrelated{Visibility: 1})
	bound := ecmp.ExactBestClassical(6, 2, 2)
	if bell.Collisions.Mean() < bound-3*bell.Collisions.CI95() {
		t.Fatalf("ECMP quantum pairing %v below classical optimum %v — impossible",
			bell.Collisions.Mean(), bound)
	}
}
