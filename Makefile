GO ?= go

.PHONY: build test verify race lint bench bench-report bench-solvers bench-solvers-baseline bench-simscale bench-simscale-baseline bench-loadtest bench-serve-baseline bench-overload bench-overload-baseline repro frontier soak qcoordd-smoke clean

build:
	$(GO) build ./...

# Tier-1 gate: everything must build and every test must pass.
test: build
	$(GO) test ./...

# Full verification: tier-1 plus static analysis and the race detector.
# The parallel execution layer makes the race pass load-bearing — every
# fan-out (experiments, sweeps, advantage trials, quantum searches) runs
# under it.
verify: build
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -shuffle=on ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./...

# Static analysis matching the CI gate. staticcheck is skipped (with a
# note) when not installed; CI always runs it.
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Regenerate BENCH_parallel.json (per-experiment wall times, serial vs
# parallel, plus hot-path allocs/op).
bench-report:
	$(GO) run ./cmd/bench

# Regenerate BENCH_solvers.json: the flat solver kernels (Gray-code
# classical, contiguous-buffer quantum ascent) against the retained
# reference implementations, plus the batched pipeline and cache-hit
# numbers. CI uploads this as an artifact.
bench-solvers:
	$(GO) run ./cmd/bench -solvers -out BENCH_solvers.json

# Refresh the committed benchstat baseline that CI compares against
# (informational, non-blocking). Run on a quiet machine.
bench-solvers-baseline:
	$(GO) test ./internal/games/ -run '^$$' \
		-bench 'BenchmarkClassicalValueKernel|BenchmarkQuantumAscentKernel|BenchmarkSolveBatch' \
		-benchmem -count 6 | tee .github/bench-solvers-baseline.txt

# Regenerate BENCH_simscale.json: scheduler throughput under the hold model
# (heap vs calendar queue at N up to 10⁵ pending events), end-to-end task
# throughput of the cell-sharded simulation, and warm solve-cache lookup
# throughput single-lock vs striped. CI uploads this as an artifact.
bench-simscale:
	$(GO) run ./cmd/bench -simscale

# Refresh the committed engine-benchmark baseline for the informational
# benchstat comparison in CI. Run on a quiet machine.
bench-simscale-baseline:
	$(GO) test ./internal/netsim/ -run '^$$' -bench 'BenchmarkEngine' \
		-benchtime 1000000x -benchmem -count 6 | tee .github/bench-simscale-baseline.txt

# Regenerate BENCH_loadtest.json: the deterministic serving-path load test
# (virtual-time open-loop generator, internal/loadtest), including the
# goodput-vs-offered-load overload curve (-overload, EXPERIMENTS.md E21).
# The report is a pure function of the seed — CI regenerates it and requires
# a byte-for-byte match with the committed copy. Add -loadtest-wall for an
# uncommitted wall-clock section.
bench-loadtest:
	$(GO) run ./cmd/bench -loadtest -overload -out BENCH_loadtest.json

# Admission-path microbenchmarks (gate accept/shed, limiter fast path, EWMA
# update) — the hot-path cost of overload resilience. CI runs these and
# compares against the committed baseline (informational, non-blocking).
bench-overload:
	$(GO) test ./internal/admission/ -run '^$$' \
		-bench 'BenchmarkAdmission|BenchmarkLimiter' \
		-benchmem -count 6 | tee bench-overload-current.txt

# Refresh the committed admission-path baseline for the informational
# benchstat comparison in CI. Run on a quiet machine.
bench-overload-baseline:
	$(GO) test ./internal/admission/ -run '^$$' \
		-bench 'BenchmarkAdmission|BenchmarkLimiter' \
		-benchmem -count 6 | tee .github/bench-overload-baseline.txt

# Refresh the committed serving-path benchmark baseline (in-process decide,
# single-round HTTP, batched HTTP) for the informational benchstat
# comparison in CI. Run on a quiet machine.
bench-serve-baseline:
	$(GO) test ./internal/serve/ -run '^$$' -bench 'BenchmarkDecide' \
		-benchmem -count 6 | tee .github/bench-serve-baseline.txt

repro:
	$(GO) run ./cmd/repro

# Regenerate FRONTIER_advantage.csv: the E20 quantum-vs-classical advantage
# frontier (decision deadline × fiber distance × source visibility). The
# grid is a pure function of the seed — every point simulates on its own
# derived stream — so CI regenerates it at two worker counts and requires a
# byte-for-byte match with the committed copy.
frontier:
	$(GO) run ./cmd/repro -frontier FRONTIER_advantage.csv

# Kill/resume soak: storm the E1–E20 sweep with schedule-drawn kills,
# resume from the crash-safe checkpoint each time, and require the
# converged output to be byte-identical to an uninterrupted run. The log
# lands in soak.log (uploaded as a CI artifact). Short budget by default;
# crank -cycles/-scale for a longer burn.
soak: build
	$(GO) run ./cmd/soak -cycles 3 -scale 0.05 > soak.log 2>&1; s=$$?; cat soak.log; exit $$s

# Serving smoke at full scale: build qcoordd with the race detector, start
# it as a real process, register 64 sessions each scripted with a source
# outage, drive 10k concurrent decisions (every one must succeed), require
# every session to degrade and recover, then SIGTERM and require a clean
# drain — exit 0 and a valid final metrics artifact. The same test runs at
# reduced scale (16×2k) in the plain tier-1 `go test ./...` pass.
qcoordd-smoke: build
	QCOORDD_SMOKE_SESSIONS=64 QCOORDD_SMOKE_DECISIONS=10000 \
		$(GO) test -race -v -timeout 20m -run TestQcoorddSmoke ./cmd/qcoordd/

clean:
	$(GO) clean ./...
