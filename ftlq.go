// Package ftlq ("faster-than-light coordination with quantum non-local
// games") is the public API of this repository — a Go implementation of
// Arun, Chidambaram & Aaronson, "Faster-than-light coordination for
// networked systems with quantum non-local games" (HotNets '25).
//
// The library lets networked-system components make instantly correlated
// decisions without communicating, by sharing entangled qubit pairs ahead
// of time and measuring them in input-dependent bases. Quantum hardware is
// simulated exactly (state vectors / density matrices with a Werner noise
// model); the correlations produced are precisely those physics allows, so
// results transfer to real SPDC-based deployments.
//
// # Quick start
//
//	session, err := ftlq.NewSession(ftlq.SessionConfig{
//		Game:     ftlq.NewColocationCHSH(),
//		Supplier: ftlq.PerfectSupplier{Visibility: 0.95},
//	})
//	...
//	d := session.Round(now, x, y) // both parties' correlated decisions
//
// See examples/ for runnable end-to-end scenarios (GPU SM scheduling,
// serverless affinity routing, ECMP), and cmd/ for the binaries that
// regenerate every figure of the paper.
package ftlq

import (
	"repro/internal/core"
	"repro/internal/ecmp"
	"repro/internal/entangle"
	"repro/internal/games"
	"repro/internal/loadbalance"
	"repro/internal/xrand"
)

// Re-exported game types and constructors.
type (
	// XORGame is a two-party game whose win condition is a parity of the
	// answers — the class with a polynomial-time computable quantum value.
	XORGame = games.XORGame
	// EdgeLabel marks a task-class pair as colocating or exclusive.
	EdgeLabel = games.EdgeLabel
	// ClassicalResult is a game's exact classical optimum and strategy.
	ClassicalResult = games.ClassicalResult
	// QuantumResult is a game's quantum optimum with its realizing vectors.
	QuantumResult = games.QuantumResult
	// JointSampler produces one round of correlated answers.
	JointSampler = games.JointSampler
)

// Edge labels for affinity graphs.
const (
	Colocate  = games.Colocate
	Exclusive = games.Exclusive
)

// NewCHSH returns the standard CHSH game (classical 3/4, quantum cos²(π/8)).
func NewCHSH() *XORGame { return games.NewCHSH() }

// NewColocationCHSH returns the load-balancing variant of §4.1: output the
// same server bit iff both tasks are colocation-loving.
func NewColocationCHSH() *XORGame { return games.NewColocationCHSH() }

// GraphXORGame builds an affinity game from a labeled task-class graph.
func GraphXORGame(name string, n int, labels [][]EdgeLabel) *XORGame {
	return games.GraphXORGame(name, n, labels)
}

// Re-exported coordination session API.
type (
	// Session coordinates two parties through a game and an entanglement
	// supply with zero per-decision communication.
	Session = core.Session
	// SessionConfig assembles a Session.
	SessionConfig = core.Config
	// Decision is one round's outcome.
	Decision = core.Decision
	// SessionStats aggregates a session's history.
	SessionStats = core.Stats
)

// Decision modes.
const (
	ModeQuantum  = core.ModeQuantum
	ModeFallback = core.ModeFallback
)

// NewSession builds a coordination session.
func NewSession(cfg SessionConfig) (*Session, error) { return core.NewSession(cfg) }

// CriticalVisibility returns the noise threshold below which a game's
// quantum strategy stops beating its classical optimum.
func CriticalVisibility(classical, quantum float64) float64 {
	return core.CriticalVisibility(classical, quantum)
}

// Re-exported entanglement substrate.
type (
	// Supplier provides entangled pairs to sessions.
	Supplier = entangle.Supplier
	// PerfectSupplier always supplies pairs at a fixed visibility.
	PerfectSupplier = entangle.PerfectSupplier
	// EmptySupplier never has a pair (always classical fallback).
	EmptySupplier = entangle.EmptySupplier
	// Pool buffers distributed pairs at a pair of QNICs.
	Pool = entangle.Pool
	// SourceConfig models an SPDC entangled-photon source.
	SourceConfig = entangle.SourceConfig
	// QNICConfig models the quantum NIC (storage, decoherence, latency).
	QNICConfig = entangle.QNICConfig
)

// DefaultSource returns a mid-range room-temperature SPDC configuration.
func DefaultSource() SourceConfig { return entangle.DefaultSource() }

// DefaultQNIC returns a mid-range room-temperature QNIC configuration.
func DefaultQNIC() QNICConfig { return entangle.DefaultQNIC() }

// NewPool creates a pair pool with the given QNIC model and capacity.
func NewPool(q QNICConfig, capacity int) *Pool { return entangle.NewPool(q, capacity) }

// Re-exported load-balancing simulator (the paper's Figure 4 testbed).
type (
	// LBConfig parametrizes a load-balancing simulation.
	LBConfig = loadbalance.Config
	// LBResult is one simulation's metrics.
	LBResult = loadbalance.Result
	// LBStrategy assigns tasks to servers each slot.
	LBStrategy = loadbalance.Strategy
)

// RunLB executes a load-balancing simulation.
func RunLB(cfg LBConfig, s LBStrategy) LBResult { return loadbalance.Run(cfg, s) }

// NewQuantumLB returns the paper's CHSH-paired quantum balancing strategy
// at the given visibility, seeded deterministically.
func NewQuantumLB(visibility float64, seed uint64) LBStrategy {
	return loadbalance.NewQuantumPairedStrategy(visibility, xrand.New(seed, 0xfacade))
}

// NewRandomLB returns the classical uniform-random baseline.
func NewRandomLB() LBStrategy { return loadbalance.RandomStrategy{} }

// Rand returns a deterministic random stream for use with the lower-level
// APIs (game solvers, samplers).
func Rand(seed uint64) *xrand.RNG { return xrand.New(seed, 0xfacade) }

// Re-exported ECMP study (the paper's §4.2 negative result).
type (
	// ECMPConfig parametrizes an ECMP collision simulation.
	ECMPConfig = ecmp.Config
	// ECMPResult is one ECMP simulation's metrics.
	ECMPResult = ecmp.Result
	// PathStrategy chooses ECMP paths for active switches.
	PathStrategy = ecmp.PathStrategy
)

// RunECMP executes an ECMP collision simulation.
func RunECMP(cfg ECMPConfig, s PathStrategy) ECMPResult { return ecmp.Run(cfg, s) }

// ECMPBestClassical returns the exact classical optimum for expected
// colliding pairs (n switches, m paths, k active).
func ECMPBestClassical(n, m, k int) float64 { return ecmp.ExactBestClassical(n, m, k) }

// Re-exported certification and hardware-planning APIs.
type (
	// CHSHCertificate is the result of a Bell-certification run against
	// black-box decision hardware.
	CHSHCertificate = games.CHSHCertificate
	// PlanarRealization is a single-Bell-pair measurement recipe (angles
	// per party and input) realizing an XOR-game strategy.
	PlanarRealization = games.PlanarRealization
	// RepeaterChain plans multi-segment entanglement distribution.
	RepeaterChain = entangle.RepeaterChain
)

// CertifyCHSH estimates the CHSH S-value of a sampler: S > 2 certifies
// entanglement, S ≤ 2√2 is the quantum (Tsirelson) consistency check.
func CertifyCHSH(s JointSampler, roundsPerSetting int, rng *xrand.RNG) CHSHCertificate {
	return games.CertifyCHSH(s, roundsPerSetting, rng)
}

// Bounds on the CHSH S-value.
const (
	// SClassicalBound is the local-hidden-variable limit (S ≤ 2).
	SClassicalBound = games.ClassicalBound
)

// STsirelsonBound is the quantum limit on S (2√2).
var STsirelsonBound = games.TsirelsonBound

// Cluster is the fleet-level coordinator: N nodes paired into sessions
// sharing one entanglement supply.
type Cluster = core.Cluster

// ClusterConfig assembles a Cluster.
type ClusterConfig = core.ClusterConfig

// NewCluster builds a fleet coordinator (node 2k pairs with node 2k+1).
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return core.NewCluster(cfg) }

// BiasedColocationGame returns the colocation game tuned to a skewed task
// mix: x = 1 with probability pA, y = 1 with probability pB.
func BiasedColocationGame(pA, pB float64) *XORGame { return games.BiasedColocationGame(pA, pB) }

// MultiClassColocationGame builds the game over k task classes where
// same-class caching pairs colocate and everything else excludes.
func MultiClassColocationGame(kinds []games.ClassKind, weights []float64) *XORGame {
	return games.MultiClassColocationGame(kinds, weights)
}

// Class kinds for MultiClassColocationGame.
const (
	KindExclusive = games.KindExclusive
	KindCaching   = games.KindCaching
)
