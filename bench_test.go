package ftlq

// One benchmark per experiment (figure/table) of the paper, as required by
// the reproduction harness. Each BenchmarkEx runs a reduced-size version of
// the corresponding experiment so `go test -bench=.` exercises every
// pipeline end-to-end; the cmd/ binaries run the full-size versions.

import (
	"math"
	"testing"
	"time"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/ecmp"
	"repro/internal/entangle"
	"repro/internal/games"
	"repro/internal/loadbalance"
	"repro/internal/netsim"
	"repro/internal/qkd"
	"repro/internal/qsim"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// BenchmarkE1CHSH regenerates E1: CHSH classical and quantum values plus a
// sampled win-rate estimate.
func BenchmarkE1CHSH(b *testing.B) {
	b.ReportAllocs()
	rng := xrand.New(1, 1)
	g := games.NewCHSH()
	for i := 0; i < b.N; i++ {
		c := g.ClassicalValue()
		q := g.QuantumValue(rng)
		if math.Abs(c.Value-0.75) > 1e-9 || math.Abs(q.Value-0.8535533905932737) > 1e-6 {
			b.Fatalf("values drifted: c=%v q=%v", c.Value, q.Value)
		}
		s := q.QuantumSampler(1.0)
		wins := 0
		const rounds = 2000
		for r := 0; r < rounds; r++ {
			x, y := g.SampleInput(rng)
			aa, bb := s.Sample(x, y, rng)
			if g.Wins(x, y, aa, bb) {
				wins++
			}
		}
		if float64(wins)/rounds < 0.8 {
			b.Fatalf("sampled rate %v too low", float64(wins)/rounds)
		}
	}
}

// BenchmarkE2XORAdvantage regenerates one Figure 3 sweep point: the
// probability a random K5 XOR game at p=0.5 has a quantum advantage.
func BenchmarkE2XORAdvantage(b *testing.B) {
	b.ReportAllocs()
	rng := xrand.New(2, 2)
	for i := 0; i < b.N; i++ {
		p := games.AdvantageProbability(5, 0.5, 20, rng)
		if p < 0.2 {
			b.Fatalf("advantage probability %v implausibly low at p=0.5", p)
		}
	}
}

// BenchmarkE3LoadBalance regenerates one Figure 4 point: classical vs
// quantum mean queue length at load 1.1.
func BenchmarkE3LoadBalance(b *testing.B) {
	b.ReportAllocs()
	cfg := loadbalance.Config{
		NumBalancers: 100, NumServers: 91,
		Warmup: 500, Slots: 2000,
		Discipline: loadbalance.BatchCFirst,
		Workload:   workload.Bernoulli{PC: 0.5},
		Seed:       3,
	}
	for i := 0; i < b.N; i++ {
		rc := loadbalance.Run(cfg, loadbalance.RandomStrategy{})
		rq := loadbalance.Run(cfg, loadbalance.NewQuantumPairedStrategy(1.0, xrand.New(3, uint64(i))))
		if rq.QueueLen.Mean() >= rc.QueueLen.Mean() {
			b.Fatalf("quantum %v not below classical %v at the knee",
				rq.QueueLen.Mean(), rc.QueueLen.Mean())
		}
	}
}

// BenchmarkE4Timing regenerates Figure 2: the three-architecture latency
// and win-rate comparison.
func BenchmarkE4Timing(b *testing.B) {
	b.ReportAllocs()
	cfg := core.DefaultTimingConfig()
	cfg.Rounds = 2000
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		rows := core.RunTiming(cfg)
		if len(rows) != 3 {
			b.Fatal("missing architecture rows")
		}
	}
}

// BenchmarkE5ECMP regenerates the §4.2 collision comparison and reduction.
func BenchmarkE5ECMP(b *testing.B) {
	b.ReportAllocs()
	cfg := ecmp.Config{NumSwitches: 6, NumPaths: 2, ActiveK: 2, Rounds: 5000, Seed: 5}
	for i := 0; i < b.N; i++ {
		shared := ecmp.Run(cfg, ecmp.SharedPermutation{})
		bound := ecmp.ExactBestClassical(6, 2, 2)
		if shared.Collisions.Mean() < bound-3*shared.Collisions.CI95() {
			b.Fatalf("collisions %v below proved bound %v", shared.Collisions.Mean(), bound)
		}
		rep := ecmp.StandardReductionDemo()
		if rep.MaxMarginalShift > 1e-10 || rep.MixtureError > 1e-10 {
			b.Fatalf("reduction demo failed: %+v", rep)
		}
	}
}

// BenchmarkE6Noise regenerates the visibility sweep: quantum colocation
// success degrading to classical at V = 1/√2.
func BenchmarkE6Noise(b *testing.B) {
	b.ReportAllocs()
	cfg := loadbalance.Config{
		NumBalancers: 40, NumServers: 36,
		Warmup: 200, Slots: 2000,
		Discipline: loadbalance.BatchCFirst,
		Workload:   workload.Bernoulli{PC: 0.5},
		Seed:       6,
	}
	for i := 0; i < b.N; i++ {
		sCrit := loadbalance.NewQuantumPairedStrategy(1/math.Sqrt2, xrand.New(6, uint64(i)))
		loadbalance.Run(cfg, sCrit)
		if math.Abs(sCrit.ColocationStats().Rate()-0.75) > 0.03 {
			b.Fatalf("critical-visibility colocation %v, want 0.75", sCrit.ColocationStats().Rate())
		}
	}
}

// BenchmarkE7Supply regenerates the supply-vs-demand experiment: pool
// starvation under 2x oversubscription.
func BenchmarkE7Supply(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var engine netsim.Engine
		rng := xrand.New(7, uint64(i))
		src := entangle.DefaultSource()
		pool := entangle.NewPool(entangle.DefaultQNIC(), 0)
		svc := entangle.StartService(&engine, src, pool, rng)
		quantum, classical := 0, 0
		demand := time.Duration(float64(time.Second) / (2 * src.PairRate))
		cancel := engine.Every(demand, func() {
			if _, ok := pool.TryConsume(engine.Now()); ok {
				quantum++
			} else {
				classical++
			}
		})
		engine.RunUntil(50 * time.Millisecond)
		cancel()
		svc.Stop()
		frac := float64(quantum) / float64(quantum+classical)
		if frac < 0.3 || frac > 0.7 {
			b.Fatalf("quantum fraction %v at 2x oversubscription, want ~0.5", frac)
		}
	}
}

// BenchmarkE8GHZ regenerates the Mermin–GHZ experiment: classical 0.75 vs
// the always-winning GHZ strategy.
func BenchmarkE8GHZ(b *testing.B) {
	b.ReportAllocs()
	rng := xrand.New(8, 8)
	g := games.MerminGHZ()
	for i := 0; i < b.N; i++ {
		if math.Abs(g.ClassicalValue()-0.75) > 1e-9 {
			b.Fatal("classical value drifted")
		}
		s := games.NewGHZSampler(3, rng)
		if v := g.EmpiricalValue(s, 500, rng); v != 1 {
			b.Fatalf("GHZ strategy lost: %v", v)
		}
	}
}

// BenchmarkE9SupplyLimited regenerates the supply-limited balancing point:
// half-rate supply gives a ~50% quantum fraction.
func BenchmarkE9SupplyLimited(b *testing.B) {
	b.ReportAllocs()
	cfg := loadbalance.Config{
		NumBalancers: 40, NumServers: 38,
		Warmup: 200, Slots: 2000,
		Discipline: loadbalance.BatchCFirst,
		Workload:   workload.Bernoulli{PC: 0.5},
		Seed:       9,
	}
	demand := float64(cfg.NumBalancers/2) * 1000
	for i := 0; i < b.N; i++ {
		s := loadbalance.NewSupplyLimitedStrategy(
			loadbalance.NewRatedSupplier(demand/2, 1.0, 64), time.Millisecond, xrand.New(9, uint64(i)))
		loadbalance.Run(cfg, s)
		if f := s.QuantumFraction(); math.Abs(f-0.5) > 0.06 {
			b.Fatalf("quantum fraction %v, want ~0.5", f)
		}
	}
}

// BenchmarkE10MultiClass regenerates the 3-class scheduling comparison.
func BenchmarkE10MultiClass(b *testing.B) {
	b.ReportAllocs()
	kinds := []games.ClassKind{games.KindExclusive, games.KindCaching, games.KindCaching}
	game := games.MultiClassColocationGame(kinds, []float64{1, 1, 1})
	cfg := loadbalance.Config{
		NumBalancers: 40, NumServers: 36,
		Warmup: 200, Slots: 2000,
		Discipline: loadbalance.BatchSameClassC,
		Workload: workload.MultiClass{Weights: []float64{1, 1, 1},
			ClassTypes: []workload.TaskType{workload.TypeE, workload.TypeC, workload.TypeC}},
		Seed: 10,
	}
	for i := 0; i < b.N; i++ {
		q := loadbalance.NewGraphPairedStrategy(game, 1.0, xrand.New(10, uint64(i)))
		loadbalance.Run(cfg, q)
		if q.ColocationStats().Rate() < 0.8 {
			b.Fatalf("multi-class colocation %v", q.ColocationStats().Rate())
		}
	}
}

// BenchmarkE11Repeater regenerates the swap-law verification and crossover.
func BenchmarkE11Repeater(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, veff := entangle.SwapWernerPairs(0.95, 0.9)
		if math.Abs(veff-0.855) > 1e-9 {
			b.Fatalf("swap law broken: %v", veff)
		}
		if s := entangle.CrossoverSegments(entangle.DefaultSource(), 300_000, 0.5, 16); s == 0 {
			b.Fatal("no crossover found at 300 km")
		}
	}
}

// BenchmarkE12Certification regenerates the three-tier certification.
func BenchmarkE12Certification(b *testing.B) {
	b.ReportAllocs()
	rng := xrand.New(12, 12)
	g := games.NewCHSH()
	q := g.QuantumValue(rng)
	for i := 0; i < b.N; i++ {
		cert := games.CertifyCHSH(q.QuantumSampler(0.95), 5000, rng)
		if !cert.ViolatesClassicalBound(3) || !cert.WithinTsirelson(3) {
			b.Fatalf("certification verdicts wrong: S=%v", cert.S)
		}
	}
}

// BenchmarkE13CacheMechanism regenerates the LRU hit-rate comparison.
func BenchmarkE13CacheMechanism(b *testing.B) {
	b.ReportAllocs()
	cfg := cachesim.Config{
		NumDispatchers: 24, NumServers: 42,
		NumTextures: 3, TextureWeights: []float64{1, 1, 1},
		CacheSlots: 2, HitCost: 1, MissCost: 3,
		Warmup: 200, Ticks: 2000,
		Seed: 13,
	}
	kinds := []games.ClassKind{games.KindCaching, games.KindCaching, games.KindCaching}
	game := games.MultiClassColocationGame(kinds, cfg.TextureWeights)
	for i := 0; i < b.N; i++ {
		rr := cachesim.Run(cfg, loadbalance.RandomStrategy{})
		rq := cachesim.Run(cfg, loadbalance.NewGraphPairedStrategy(game, 1.0, xrand.New(13, uint64(i))))
		if rq.HitRate.Rate() <= rr.HitRate.Rate() {
			b.Fatalf("quantum hit rate %v not above random %v", rq.HitRate.Rate(), rr.HitRate.Rate())
		}
	}
}

// BenchmarkE14LeaderElection regenerates the W-state election comparison.
func BenchmarkE14LeaderElection(b *testing.B) {
	b.ReportAllocs()
	rng := xrand.New(14, 14)
	for i := 0; i < b.N; i++ {
		st := games.RunLeaderElection(5, 2000, rng)
		if st.QuantumSuccess != 1 {
			b.Fatalf("quantum election failed: %v", st.QuantumSuccess)
		}
		if math.Abs(st.ClassicalSuccess-games.ClassicalLeaderElectionValue(5)) > 0.05 {
			b.Fatalf("classical election rate %v off formula", st.ClassicalSuccess)
		}
	}
}

// BenchmarkE15AdaptiveMeasurement regenerates the dephasing re-optimization.
func BenchmarkE15AdaptiveMeasurement(b *testing.B) {
	b.ReportAllocs()
	rng := xrand.New(15, 15)
	g := games.NewCHSH()
	rho := qsim.DensityFromPure(qsim.Bell()).
		ApplyChannel(0, qsim.Dephasing(0.6)).
		ApplyChannel(1, qsim.Dephasing(0.6))
	for i := 0; i < b.N; i++ {
		fixed, adapted := games.AdaptiveGain(g, rho, games.OptimalCHSHAngles(), rng)
		if adapted < fixed {
			b.Fatalf("adaptation lost value: %v < %v", adapted, fixed)
		}
	}
}

// BenchmarkE16QKD regenerates the key-distribution comparison: clean
// channel produces key, intercept-resend is detected.
func BenchmarkE16QKD(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clean := qkd.Run(qkd.Config{Rounds: 3000, Visibility: 1, AbortS: 2, Seed: uint64(i + 1)})
		if clean.Aborted || clean.QBER.Successes() != 0 {
			b.Fatalf("clean channel failed: %v", clean)
		}
		tapped := qkd.Run(qkd.Config{Rounds: 3000, Visibility: 1, Eve: qkd.StandardEve(), AbortS: 2, Seed: uint64(i + 1)})
		if !tapped.Aborted {
			b.Fatalf("eavesdropper not detected: %v", tapped)
		}
	}
}

// BenchmarkE17Chaos regenerates a reduced fault-injection run: the full
// phase schedule against a resilient session, classical floor held.
func BenchmarkE17Chaos(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.RunChaos(core.ChaosConfig{
			Game:    games.NewColocationCHSH(),
			Source:  entangle.DefaultSource(),
			QNIC:    entangle.DefaultQNIC(),
			PoolCap: 64,
			Chain:   &entangle.RepeaterChain{Segments: 4, Source: entangle.DefaultSource(), BSMSuccess: 0.5},
			Phases:  core.DefaultChaosPhases(300),
			Seed:    42,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.FloorHeld {
			b.Fatalf("classical floor broken: %+v", res.Phases)
		}
	}
}

// BenchmarkServeHotPath isolates the simulator's inner loop: one saturated
// load-balancing run per iteration, dominated by Server push/serve/remove
// traffic. The per-type counts, prefix-shift removal, and reused scratch
// buffers keep the steady-state allocation count flat in Slots.
func BenchmarkServeHotPath(b *testing.B) {
	b.ReportAllocs()
	cfg := loadbalance.Config{
		NumBalancers: 100, NumServers: 80, // load 1.25: queues stay busy
		Warmup: 0, Slots: 2000,
		Discipline: loadbalance.BatchCFirst,
		Workload:   workload.Bernoulli{PC: 0.5},
		Seed:       17,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := loadbalance.Run(cfg, loadbalance.RandomStrategy{})
		if r.Served == 0 {
			b.Fatal("nothing served")
		}
	}
}

// BenchmarkAscend isolates the Burer–Monteiro coordinate ascent that
// dominates XOR-game solving, bypassing the solve cache so every iteration
// pays full price (the gradient buffer is hoisted out of the sweep loop).
func BenchmarkAscend(b *testing.B) {
	b.ReportAllocs()
	g := games.MultiClassColocationGame(
		[]games.ClassKind{games.KindExclusive, games.KindCaching, games.KindCaching},
		[]float64{1, 1, 1})
	rng := xrand.New(18, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := g.QuantumValueUncached(rng)
		if q.Value < 0.8 {
			b.Fatalf("solver regressed: %v", q.Value)
		}
	}
}
